// Package graphs implements the three graph algorithms the routing flow
// of the paper relies on (supplemental section S3): connected components
// via depth-first search [Hopcroft & Tarjan 1973], strongly connected
// components via Gabow's path-based depth-first search [Gabow 2000], and
// topological sorting via Kahn's algorithm [Kahn 1962].
//
// Graphs are small (one vertex per droplet being routed in a sub-problem),
// so the representation favours clarity: a directed graph over dense
// integer vertex ids.
package graphs

import "fmt"

// Digraph is a directed graph over vertices 0..N-1.
type Digraph struct {
	adj [][]int
}

// NewDigraph creates a directed graph with n vertices and no edges.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graphs: negative vertex count %d", n))
	}
	return &Digraph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.adj) }

// AddEdge inserts the directed edge u -> v. Duplicate edges are kept;
// the algorithms below tolerate them.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], v)
}

// HasEdge reports whether the edge u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	g.check(u)
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// RemoveEdgesTo deletes every edge whose head is v. The router uses this
// when a droplet is relocated to a buffer module: edges (*, v) disappear
// because v's old location is now free.
func (g *Digraph) RemoveEdgesTo(v int) {
	g.check(v)
	for u := range g.adj {
		kept := g.adj[u][:0]
		for _, w := range g.adj[u] {
			if w != v {
				kept = append(kept, w)
			}
		}
		g.adj[u] = kept
	}
}

// RemoveEdgesFrom deletes every edge whose tail is v.
func (g *Digraph) RemoveEdgesFrom(v int) {
	g.check(v)
	g.adj[v] = g.adj[v][:0]
}

// Succ returns the successor list of u. The slice is shared; callers must
// not mutate it.
func (g *Digraph) Succ(u int) []int {
	g.check(u)
	return g.adj[u]
}

// Edges returns every edge as (tail, head) pairs in adjacency order.
func (g *Digraph) Edges() [][2]int {
	var out [][2]int
	for u, vs := range g.adj {
		for _, v := range vs {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph(g.N())
	for u, vs := range g.adj {
		c.adj[u] = append([]int(nil), vs...)
	}
	return c
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graphs: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}

// ConnectedComponents treats the digraph as undirected and returns the
// vertex sets of its connected components. Components are ordered by
// their smallest vertex; vertices within a component are sorted
// ascending. This is the multi-directional DFS of supplemental S3 line 12.
func ConnectedComponents(g *Digraph) [][]int {
	n := g.N()
	// Build the symmetric closure once so the DFS can walk both ways.
	undirected := make([][]int, n)
	for u, vs := range g.adj {
		for _, v := range vs {
			undirected[u] = append(undirected[u], v)
			undirected[v] = append(undirected[v], u)
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(comps)
		stack := []int{start}
		comp[start] = id
		var members []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range undirected[u] {
				if comp[v] < 0 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		sortInts(members)
		comps = append(comps, members)
	}
	return comps
}

// StronglyConnectedComponents computes the SCCs of g using Gabow's
// path-based depth-first search. Every vertex appears in exactly one
// component; single-vertex components are included (the router filters
// those out, since a lone vertex has no cyclic dependency unless it has a
// self-loop). Components are returned in reverse topological order of the
// condensation (callees before callers), which is a property of the
// algorithm the router exploits.
func StronglyConnectedComponents(g *Digraph) [][]int {
	n := g.N()
	const unvisited = -1
	preorder := make([]int, n)
	for i := range preorder {
		preorder[i] = unvisited
	}
	assigned := make([]bool, n)
	var (
		s, p    []int // Gabow's two stacks
		counter int
		comps   [][]int
	)

	// Iterative DFS: each frame tracks the vertex and the index of the
	// next successor to explore, to avoid recursion on deep graphs.
	type frame struct {
		v, next int
	}
	for root := 0; root < n; root++ {
		if preorder[root] != unvisited {
			continue
		}
		stack := []frame{{root, 0}}
		preorder[root] = counter
		counter++
		s = append(s, root)
		p = append(p, root)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.v]) {
				w := g.adj[f.v][f.next]
				f.next++
				if preorder[w] == unvisited {
					preorder[w] = counter
					counter++
					s = append(s, w)
					p = append(p, w)
					stack = append(stack, frame{w, 0})
				} else if !assigned[w] {
					// Contract the cycle: pop P down to w's preorder.
					for preorder[p[len(p)-1]] > preorder[w] {
						p = p[:len(p)-1]
					}
				}
				continue
			}
			// Finished v. If v is the top of P, pop one component off S.
			v := f.v
			stack = stack[:len(stack)-1]
			if len(p) > 0 && p[len(p)-1] == v {
				p = p[:len(p)-1]
				var comp []int
				for {
					w := s[len(s)-1]
					s = s[:len(s)-1]
					assigned[w] = true
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// CyclicSCCs returns only the strongly connected components that contain
// a cycle: components with more than one vertex, or single vertices with
// a self-loop. These are exactly the droplet dependency cycles that the
// router must break.
func CyclicSCCs(g *Digraph) [][]int {
	var out [][]int
	for _, c := range StronglyConnectedComponents(g) {
		if len(c) > 1 || g.HasEdge(c[0], c[0]) {
			out = append(out, c)
		}
	}
	return out
}

// ErrCyclic is returned by TopologicalOrder when the graph has a cycle.
type ErrCyclic struct {
	// Remaining holds the vertices that could not be ordered (those on or
	// downstream of a cycle).
	Remaining []int
}

func (e *ErrCyclic) Error() string {
	return fmt.Sprintf("graphs: cycle detected; %d vertices unordered", len(e.Remaining))
}

// TopologicalOrder returns the vertices in topological order (every edge
// goes from an earlier to a later vertex) using Kahn's algorithm. Ties are
// broken by smallest vertex id so the result is deterministic. If the
// graph is cyclic it returns an *ErrCyclic carrying the unordered
// vertices.
func TopologicalOrder(g *Digraph) ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for _, vs := range g.adj {
		for _, v := range vs {
			indeg[v]++
		}
	}
	ready := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready.push(v)
		}
	}
	order := make([]int, 0, n)
	for ready.len() > 0 {
		v := ready.pop()
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready.push(w)
			}
		}
	}
	if len(order) != n {
		seen := make([]bool, n)
		for _, v := range order {
			seen[v] = true
		}
		var remaining []int
		for v := 0; v < n; v++ {
			if !seen[v] {
				remaining = append(remaining, v)
			}
		}
		return order, &ErrCyclic{Remaining: remaining}
	}
	return order, nil
}

// ReverseTopologicalOrder returns the vertices so that every edge goes
// from a later to an earlier vertex. The router processes droplets in this
// order: edge (Dx, Dy) means Dx moves to Dy's location, so Dy must be
// routed first (S3: "a legal routing solution ... in reverse topological
// order").
func ReverseTopologicalOrder(g *Digraph) ([]int, error) {
	order, err := TopologicalOrder(g)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// intHeap is a tiny binary min-heap over ints (avoids container/heap
// interface boilerplate for this hot, simple use).
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent] <= h.a[i] {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

// sortInts is a small insertion sort; component slices are tiny.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
