package graphs

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(3)
	if g.N() != 3 {
		t.Fatalf("N() = %d, want 3", g.N())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(2, 0) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge wrong after inserts")
	}
	if got := g.Edges(); len(got) != 2 {
		t.Errorf("Edges() = %v, want 2 edges", got)
	}
}

func TestDigraphPanicsOnBadVertex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("AddEdge out of range did not panic")
		}
	}()
	NewDigraph(2).AddEdge(0, 5)
}

func TestNewDigraphNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewDigraph(-1) did not panic")
		}
	}()
	NewDigraph(-1)
}

func TestRemoveEdgesTo(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.RemoveEdgesTo(2)
	if g.HasEdge(0, 2) || g.HasEdge(1, 2) || g.HasEdge(3, 2) {
		t.Errorf("edges into 2 survived RemoveEdgesTo")
	}
	if !g.HasEdge(2, 3) {
		t.Errorf("edge out of 2 removed by RemoveEdgesTo")
	}
}

func TestRemoveEdgesFrom(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 0)
	g.RemoveEdgesFrom(0)
	if g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Errorf("out-edges of 0 survived")
	}
	if !g.HasEdge(1, 0) {
		t.Errorf("in-edge of 0 removed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 0)
	if g.HasEdge(1, 0) {
		t.Errorf("mutating clone changed original")
	}
	if !c.HasEdge(0, 1) {
		t.Errorf("clone missing original edge")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewDigraph(7)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // direction must not matter
	g.AddEdge(3, 4)
	// 5, 6 isolated
	got := ConnectedComponents(g)
	want := [][]int{{0, 1, 2}, {3, 4}, {5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ConnectedComponents = %v, want %v", got, want)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	if got := ConnectedComponents(NewDigraph(0)); len(got) != 0 {
		t.Errorf("empty graph components = %v", got)
	}
}

func TestSCCSimpleCycle(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // cycle {0,1,2}
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := StronglyConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs (%v), want 3", len(comps), comps)
	}
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, len(c))
	}
	// All vertices accounted for.
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 5 {
		t.Errorf("SCCs cover %d vertices, want 5", total)
	}
	// The triangle must be one component.
	found := false
	for _, c := range comps {
		if reflect.DeepEqual(c, []int{0, 1, 2}) {
			found = true
		}
	}
	if !found {
		t.Errorf("cycle {0,1,2} not found in %v", comps)
	}
}

func TestSCCReverseTopologicalOfCondensation(t *testing.T) {
	// 0 -> 1 -> 2 with no cycles: Gabow emits callees first.
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	comps := StronglyConnectedComponents(g)
	want := [][]int{{2}, {1}, {0}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("SCC order = %v, want %v (reverse topological)", comps, want)
	}
}

func TestSCCTwoCycles(t *testing.T) {
	// Figure-10-like: two intersecting cycles collapse into one SCC.
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(3, 0) // acyclic attachment
	cyc := CyclicSCCs(g)
	if len(cyc) != 1 || !reflect.DeepEqual(cyc[0], []int{0, 1, 2}) {
		t.Errorf("CyclicSCCs = %v, want [[0 1 2]]", cyc)
	}
}

func TestCyclicSCCsSelfLoop(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 0)
	cyc := CyclicSCCs(g)
	if len(cyc) != 1 || !reflect.DeepEqual(cyc[0], []int{0}) {
		t.Errorf("self-loop CyclicSCCs = %v, want [[0]]", cyc)
	}
}

func TestCyclicSCCsAcyclic(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	if cyc := CyclicSCCs(g); len(cyc) != 0 {
		t.Errorf("acyclic graph reported cycles: %v", cyc)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := NewDigraph(6)
	g.AddEdge(5, 2)
	g.AddEdge(5, 0)
	g.AddEdge(4, 0)
	g.AddEdge(4, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	order, err := TopologicalOrder(g)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order %v", e, order)
		}
	}
}

func TestTopologicalOrderDeterministic(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(3, 1)
	// 0, 2, 3 all sources: smallest-id tie-break gives 0, 2, 3, 1.
	order, err := TopologicalOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 2, 3, 1}) {
		t.Errorf("order = %v, want [0 2 3 1]", order)
	}
}

func TestTopologicalOrderCycleError(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	_, err := TopologicalOrder(g)
	ce, ok := err.(*ErrCyclic)
	if !ok {
		t.Fatalf("error = %v, want *ErrCyclic", err)
	}
	if !reflect.DeepEqual(ce.Remaining, []int{0, 1}) {
		t.Errorf("Remaining = %v, want [0 1]", ce.Remaining)
	}
	if ce.Error() == "" {
		t.Errorf("empty error string")
	}
}

func TestReverseTopologicalOrder(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	order, err := ReverseTopologicalOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{2, 1, 0}) {
		t.Errorf("reverse order = %v, want [2 1 0]", order)
	}
	g.AddEdge(2, 0)
	if _, err := ReverseTopologicalOrder(g); err == nil {
		t.Errorf("cyclic graph did not error")
	}
}

// randomDigraph builds a digraph with n vertices and roughly density*n*n
// edges from the given seed.
func randomDigraph(seed int64, n int, density float64) *Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < density {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestQuickSCCPartition(t *testing.T) {
	prop := func(seed int64, nn uint8) bool {
		n := int(nn%40) + 1
		g := randomDigraph(seed, n, 0.15)
		comps := StronglyConnectedComponents(g)
		seen := make([]int, n)
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
			}
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSCCMutualReachability(t *testing.T) {
	reach := func(g *Digraph, from int) []bool {
		vis := make([]bool, g.N())
		stack := []int{from}
		vis[from] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Succ(u) {
				if !vis[v] {
					vis[v] = true
					stack = append(stack, v)
				}
			}
		}
		return vis
	}
	prop := func(seed int64, nn uint8) bool {
		n := int(nn%25) + 2
		g := randomDigraph(seed, n, 0.2)
		comps := StronglyConnectedComponents(g)
		// Any two vertices in the same SCC must reach each other; a vertex
		// in a different SCC must not be mutually reachable.
		inComp := make([]int, n)
		for ci, c := range comps {
			for _, v := range c {
				inComp[v] = ci
			}
		}
		for u := 0; u < n; u++ {
			ru := reach(g, u)
			for v := 0; v < n; v++ {
				rv := reach(g, v)
				mutual := ru[v] && rv[u]
				if mutual != (inComp[u] == inComp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTopoOrderValidOnDAGs(t *testing.T) {
	prop := func(seed int64, nn uint8) bool {
		n := int(nn%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := NewDigraph(n)
		// Only forward edges: guaranteed acyclic.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
		order, err := TopologicalOrder(g)
		if err != nil || len(order) != n {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCyclicGraphsDetected(t *testing.T) {
	prop := func(seed int64, nn uint8) bool {
		n := int(nn%20) + 3
		g := randomDigraph(seed, n, 0.1)
		// Force one cycle.
		g.AddEdge(0, 1)
		g.AddEdge(1, 0)
		_, err := TopologicalOrder(g)
		if err == nil {
			return false
		}
		return len(CyclicSCCs(g)) >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSCCDense(b *testing.B) {
	g := randomDigraph(42, 200, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StronglyConnectedComponents(g)
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := NewDigraph(500)
	for u := 0; u < 500; u++ {
		for v := u + 1; v < 500; v++ {
			if rng.Float64() < 0.01 {
				g.AddEdge(u, v)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TopologicalOrder(g); err != nil {
			b.Fatal(err)
		}
	}
}

// kosarajuSCC is an independent reference implementation (forward DFS
// order + transposed-graph DFS) used to cross-check Gabow's algorithm.
func kosarajuSCC(g *Digraph) [][]int {
	n := g.N()
	visited := make([]bool, n)
	var order []int
	var dfs1 func(int)
	dfs1 = func(u int) {
		visited[u] = true
		for _, v := range g.Succ(u) {
			if !visited[v] {
				dfs1(v)
			}
		}
		order = append(order, u)
	}
	for u := 0; u < n; u++ {
		if !visited[u] {
			dfs1(u)
		}
	}
	// Transpose.
	tr := NewDigraph(n)
	for u := 0; u < n; u++ {
		for _, v := range g.Succ(u) {
			tr.AddEdge(v, u)
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	var dfs2 func(int, int)
	dfs2 = func(u, c int) {
		comp[u] = c
		comps[c] = append(comps[c], u)
		for _, v := range tr.Succ(u) {
			if comp[v] < 0 {
				dfs2(v, c)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		if comp[order[i]] < 0 {
			comps = append(comps, nil)
			dfs2(order[i], len(comps)-1)
		}
	}
	for _, c := range comps {
		sortInts(c)
	}
	return comps
}

// TestQuickGabowMatchesKosaraju cross-checks the two SCC algorithms on
// random digraphs: identical partitions (as sets of sorted components).
func TestQuickGabowMatchesKosaraju(t *testing.T) {
	canon := func(comps [][]int) map[string]bool {
		out := map[string]bool{}
		for _, c := range comps {
			key := ""
			for _, v := range c {
				key += fmt.Sprintf("%d,", v)
			}
			out[key] = true
		}
		return out
	}
	prop := func(seed int64, nn uint8) bool {
		n := int(nn%30) + 1
		g := randomDigraph(seed, n, 0.12)
		return reflect.DeepEqual(canon(StronglyConnectedComponents(g)), canon(kosarajuSCC(g)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
