package pins

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"fppc/internal/arch"
	"fppc/internal/grid"
)

func fppcChip(t testing.TB, h int) *arch.Chip {
	c, err := arch.NewFPPC(h)
	if err != nil {
		t.Fatalf("NewFPPC(%d): %v", h, err)
	}
	return c
}

func TestProgramAppendNormalizes(t *testing.T) {
	var p Program
	p.Append(5, 1, 3, 1, 5)
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
	if got := p.Cycle(0); !reflect.DeepEqual([]int(got), []int{1, 3, 5}) {
		t.Errorf("Cycle(0) = %v, want [1 3 5]", got)
	}
}

func TestProgramAppendCopies(t *testing.T) {
	var p Program
	src := []int{2, 1}
	p.Append(src...)
	src[0] = 99
	if got := p.Cycle(0); !reflect.DeepEqual([]int(got), []int{1, 2}) {
		t.Errorf("Append shares caller memory: %v", got)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	var p Program
	p.Append(1, 4, 17)
	p.Append() // all low
	p.Append(3)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("round trip Len = %d, want 3", back.Len())
	}
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(back.Cycle(i), p.Cycle(i)) {
			t.Errorf("cycle %d = %v, want %v", i, back.Cycle(i), p.Cycle(i))
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("1 2 x\n")); err == nil {
		t.Errorf("Read accepted non-numeric pin")
	}
}

func TestValidate(t *testing.T) {
	c := fppcChip(t, 9)
	var p Program
	p.Append(1, 2, 23)
	if err := p.Validate(c); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	var bad Program
	bad.Append(24) // 12x9 has 23 pins
	if err := bad.Validate(c); err == nil {
		t.Errorf("pin 24 accepted on a 23-pin chip")
	}
}

func TestActiveCells(t *testing.T) {
	c := fppcChip(t, 15)
	// Pin 1 drives the horizontal-bus cells with x%3==0 on both rows.
	cells := ActiveCells(c, Activation{1})
	want := 0
	for x := 0; x < c.W; x++ {
		if x%3 == 0 {
			want += 2
		}
	}
	if len(cells) != want {
		t.Errorf("pin 1 drives %d cells, want %d", len(cells), want)
	}
	for cell := range cells {
		if cell.Y != 0 && cell.Y != c.H-1 {
			t.Errorf("pin 1 drives non-horizontal-bus cell %v", cell)
		}
	}
	// A dedicated hold pin drives exactly one cell.
	hold := c.ElectrodeAt(c.MixModules[0].Hold)
	cells = ActiveCells(c, Activation{hold.Pin})
	if len(cells) != 1 || !cells[c.MixModules[0].Hold] {
		t.Errorf("hold pin %d drives %v", hold.Pin, cells)
	}
}

func TestCheckThreePhaseOnFPPC(t *testing.T) {
	for _, h := range []int{9, 12, 15, 21, 31} {
		if err := CheckThreePhase(fppcChip(t, h)); err != nil {
			t.Errorf("12x%d: %v", h, err)
		}
	}
}

func TestCheckIntersectionsOnFPPC(t *testing.T) {
	for _, h := range []int{9, 12, 15, 21, 31} {
		if err := CheckIntersections(fppcChip(t, h)); err != nil {
			t.Errorf("12x%d: %v", h, err)
		}
	}
}

func TestCheckThreePhaseQuickAllHeights(t *testing.T) {
	prop := func(hh uint8) bool {
		h := arch.MinFPPCHeight + int(hh%50)
		c, err := arch.NewFPPC(h)
		if err != nil {
			return false
		}
		return CheckThreePhase(c) == nil && CheckIntersections(c) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestActiveCellsUnknownPin(t *testing.T) {
	c := fppcChip(t, 9)
	if cells := ActiveCells(c, Activation{999}); len(cells) != 0 {
		t.Errorf("unknown pin drives cells: %v", cells)
	}
}

func TestActiveCellsDA(t *testing.T) {
	c, err := arch.NewDA(15, 19)
	if err != nil {
		t.Fatal(err)
	}
	cells := ActiveCells(c, Activation{1, 2})
	if len(cells) != 2 {
		t.Fatalf("DA pins 1,2 drive %d cells, want 2", len(cells))
	}
	if !cells[grid.Cell{X: 0, Y: 0}] || !cells[grid.Cell{X: 1, Y: 0}] {
		t.Errorf("DA pin mapping wrong: %v", cells)
	}
}
