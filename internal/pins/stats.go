package pins

import (
	"fmt"
	"sort"
	"strings"
)

// Stats aggregates per-pin actuation counts over a program: the numbers
// electrode-reliability analyses start from (dielectric charging scales
// with actuation count), and a quick view of how unevenly the
// pin-constrained design loads its few control pins.
type Stats struct {
	Cycles      int
	Activations int         // total pin-cycles driven high
	PerPin      map[int]int // pin -> cycles driven high
}

// ComputeStats scans the program.
func ComputeStats(p *Program) Stats {
	st := Stats{Cycles: p.Len(), PerPin: map[int]int{}}
	for i := 0; i < p.Len(); i++ {
		for _, pin := range p.Cycle(i) {
			st.PerPin[pin]++
			st.Activations++
		}
	}
	return st
}

// Busiest returns up to n (pin, count) pairs sorted by descending count
// (ties by ascending pin id).
func (st Stats) Busiest(n int) [][2]int {
	out := make([][2]int, 0, len(st.PerPin))
	for pin, cnt := range st.PerPin {
		out = append(out, [2]int{pin, cnt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][1] != out[j][1] {
			return out[i][1] > out[j][1]
		}
		return out[i][0] < out[j][0]
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// MeanActivations returns the average high-cycles per driven pin.
func (st Stats) MeanActivations() float64 {
	if len(st.PerPin) == 0 {
		return 0
	}
	return float64(st.Activations) / float64(len(st.PerPin))
}

// String renders a short report.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d cycles, %d pin activations over %d distinct pins (mean %.1f/pin); busiest:",
		st.Cycles, st.Activations, len(st.PerPin), st.MeanActivations())
	for _, pc := range st.Busiest(5) {
		fmt.Fprintf(&b, " pin%d=%d", pc[0], pc[1])
	}
	return b.String()
}
