package pins

import (
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	var p Program
	p.Append(1, 2)
	p.Append(1)
	p.Append()
	p.Append(3, 1)
	st := ComputeStats(&p)
	if st.Cycles != 4 {
		t.Errorf("Cycles = %d, want 4", st.Cycles)
	}
	if st.Activations != 5 {
		t.Errorf("Activations = %d, want 5", st.Activations)
	}
	if st.PerPin[1] != 3 || st.PerPin[2] != 1 || st.PerPin[3] != 1 {
		t.Errorf("PerPin = %v", st.PerPin)
	}
	busiest := st.Busiest(2)
	if len(busiest) != 2 || busiest[0] != [2]int{1, 3} || busiest[1] != [2]int{2, 1} {
		t.Errorf("Busiest = %v", busiest)
	}
	if got := st.MeanActivations(); got < 1.66 || got > 1.67 {
		t.Errorf("MeanActivations = %v", got)
	}
	if s := st.String(); !strings.Contains(s, "pin1=3") {
		t.Errorf("String() = %q", s)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(&Program{})
	if st.Cycles != 0 || st.Activations != 0 || st.MeanActivations() != 0 {
		t.Errorf("empty stats wrong: %+v", st)
	}
	if got := st.Busiest(3); len(got) != 0 {
		t.Errorf("Busiest on empty = %v", got)
	}
}
