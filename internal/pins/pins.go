// Package pins represents compiled electrode-actuation programs: the
// per-cycle lists of control pins the dry controller drives (paper section
// 1.1.3), plus static checks on a chip's pin assignment such as the
// 3-phase transport-bus property of Figure 6.
package pins

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fppc/internal/arch"
	"fppc/internal/grid"
)

// Activation is the set of pins driven high during one cycle, sorted
// ascending with no duplicates.
type Activation []int

// normalize sorts and deduplicates in place, returning the result.
func normalize(a []int) Activation {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return Activation(out)
}

// Program is a sequence of cycle activations for a specific chip.
type Program struct {
	cycles []Activation
}

// Len returns the number of cycles.
func (p *Program) Len() int { return len(p.cycles) }

// Append adds one cycle driving the given pins (copied, normalized).
func (p *Program) Append(pins ...int) {
	cp := append([]int(nil), pins...)
	p.cycles = append(p.cycles, normalize(cp))
}

// Cycle returns the activation of cycle i. The slice is shared; callers
// must not mutate it.
func (p *Program) Cycle(i int) Activation { return p.cycles[i] }

// Clone returns a program that can be appended to independently of the
// original. The per-cycle activations are shared — they are immutable by
// the Cycle contract — so a clone is cheap even for long programs.
func (p *Program) Clone() *Program {
	if p == nil {
		return nil
	}
	return &Program{cycles: append([]Activation(nil), p.cycles...)}
}

// ActiveCells expands an activation into the set of energized electrodes
// on the chip.
func ActiveCells(c *arch.Chip, act Activation) map[grid.Cell]bool {
	return ActiveCellsInto(c, act, nil)
}

// ActiveCellsInto is ActiveCells writing into dst (cleared first), so a
// replay loop can reuse one map across cycles instead of allocating one
// per cycle. A nil dst allocates, making ActiveCells a trivial wrapper.
func ActiveCellsInto(c *arch.Chip, act Activation, dst map[grid.Cell]bool) map[grid.Cell]bool {
	if dst == nil {
		dst = make(map[grid.Cell]bool)
	} else {
		clear(dst)
	}
	for _, pin := range act {
		for _, cell := range c.PinCells(pin) {
			dst[cell] = true
		}
	}
	return dst
}

// Validate checks that every referenced pin exists on the chip.
func (p *Program) Validate(c *arch.Chip) error {
	for i, act := range p.cycles {
		for _, pin := range act {
			if pin <= 0 || pin > c.PinCount() {
				return fmt.Errorf("pins: cycle %d drives pin %d outside [1,%d]", i, pin, c.PinCount())
			}
		}
	}
	return nil
}

// WriteTo emits the program as text, one cycle per line of
// space-separated pin ids (empty line = all pins low).
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	var total int64
	bw := bufio.NewWriter(w)
	for _, act := range p.cycles {
		var sb strings.Builder
		for i, pin := range act {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.Itoa(pin))
		}
		sb.WriteByte('\n')
		n, err := bw.WriteString(sb.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses a program in WriteTo's format.
func Read(r io.Reader) (*Program, error) {
	p := &Program{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		var act []int // stays nil for all-low cycles, matching Append()
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("pins: line %d: %v", line, err)
			}
			act = append(act, v)
		}
		p.cycles = append(p.cycles, normalize(act))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// CheckThreePhase verifies the transport-bus pin constraint on an FPPC
// chip: along every bus, cells closer than 3 steps apart use distinct
// pins, so a droplet can ride the activation wave without being torn
// apart (Figure 6: at least 3 repeatable pins per straight path).
func CheckThreePhase(c *arch.Chip) error {
	check := func(cells []grid.Cell) error {
		for i := range cells {
			for j := i + 1; j < len(cells) && j <= i+2; j++ {
				ei, ej := c.ElectrodeAt(cells[i]), c.ElectrodeAt(cells[j])
				if ei == nil || ej == nil {
					return fmt.Errorf("pins: bus cell missing electrode near %v", cells[i])
				}
				if ei.Pin == ej.Pin {
					return fmt.Errorf("pins: bus cells %v and %v within 2 steps share pin %d",
						cells[i], cells[j], ei.Pin)
				}
			}
		}
		return nil
	}
	// Collect the bus runs: horizontal rows and vertical columns.
	rows := map[int][]grid.Cell{}
	cols := map[int][]grid.Cell{}
	for _, e := range c.Electrodes() {
		switch e.Kind {
		case arch.BusH:
			rows[e.Cell.Y] = append(rows[e.Cell.Y], e.Cell)
		case arch.BusV:
			cols[e.Cell.X] = append(cols[e.Cell.X], e.Cell)
		}
	}
	for _, run := range rows {
		if err := check(run); err != nil {
			return err
		}
	}
	for _, run := range cols {
		if err := check(run); err != nil {
			return err
		}
	}
	return nil
}

// CheckIntersections verifies that around every meeting point of two
// buses, all bus electrodes in the 8-neighbourhood carry distinct pins
// (supplemental Figure S2), so corner turns cannot tear a droplet.
func CheckIntersections(c *arch.Chip) error {
	for _, e := range c.Electrodes() {
		if e.Kind != arch.BusH {
			continue
		}
		// An intersection is a horizontal bus cell with a vertical bus
		// neighbour.
		isX := false
		for _, n := range e.Cell.Neighbors4() {
			if ne := c.ElectrodeAt(n); ne != nil && ne.Kind == arch.BusV {
				isX = true
			}
		}
		if !isX {
			continue
		}
		seen := map[int]grid.Cell{}
		nbrs := e.Cell.Neighbors8()
		cells := append([]grid.Cell{e.Cell}, nbrs[:]...)
		for _, cell := range cells {
			ne := c.ElectrodeAt(cell)
			if ne == nil || (ne.Kind != arch.BusH && ne.Kind != arch.BusV) {
				continue
			}
			if prev, dup := seen[ne.Pin]; dup {
				return fmt.Errorf("pins: intersection at %v: %v and %v share pin %d",
					e.Cell, prev, cell, ne.Pin)
			}
			seen[ne.Pin] = cell
		}
	}
	return nil
}
