// Package pool provides the bounded worker pool the synthesis pipeline
// uses to run independent work inside one compile — speculative
// auto-grow size attempts, scheduler precomputation passes, per-move
// routing path batches — without unbounded goroutine fan-out.
//
// A Pool is a concurrency limit, not a set of persistent goroutines:
// Do spawns at most Workers goroutines for the duration of one call and
// always waits for them before returning, so callers never leak work
// past their own stack frame (which is what makes the compile-level
// cancellation guarantee testable with a goroutine-count check).
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the concurrency of independent task batches.
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return 1
	}
	return p.workers
}

// Do runs fn(0)..fn(n-1) with at most Workers tasks in flight and
// returns the error of the lowest index that failed (nil when all
// succeed) — the same error a sequential loop stopping at the first
// failure would return, which keeps parallel stages byte-compatible
// with their sequential twins. Once the context is done or any task
// has failed, unstarted tasks are skipped; tasks already running are
// always waited for, so no goroutine outlives the call.
//
// A nil pool, a single-worker pool, or n <= 1 runs everything inline
// on the calling goroutine with zero goroutine overhead.
func (p *Pool) Do(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						return
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
