package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		const n = 100
		var counts [n]atomic.Int32
		if err := p.Do(context.Background(), n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times", workers, i, c)
			}
		}
	}
}

// The error contract is what keeps parallel stages byte-compatible
// with sequential loops: the LOWEST failing index wins, regardless of
// completion order.
func TestDoReturnsLowestIndexError(t *testing.T) {
	p := New(8)
	for trial := 0; trial < 50; trial++ {
		err := p.Do(context.Background(), 32, func(i int) error {
			if i%3 == 1 { // fails at 1, 4, 7, ...
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 1" {
			t.Fatalf("trial %d: err = %v, want task 1 (lowest failing index)", trial, err)
		}
	}
}

func TestDoNilPoolAndSmallNRunInline(t *testing.T) {
	var p *Pool
	ran := 0
	if err := p.Do(context.Background(), 3, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("nil pool ran %d tasks, want 3", ran)
	}
	if err := New(4).Do(context.Background(), 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	if err := p.Do(context.Background(), 50, func(i int) error {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds the %d-worker bound", got, workers)
	}
}

// Cancellation skips unstarted tasks, surfaces the context error, and —
// the leak half of the contract — joins every worker before returning.
func TestDoCancellationJoinsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	err := p.Do(ctx, 1000, func(i int) error {
		if started.Add(1) == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := int(started.Load()); n >= 1000 {
		t.Errorf("all %d tasks ran despite cancellation", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("workers leaked: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestWorkersDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", got)
	}
}
