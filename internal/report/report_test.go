package report

import (
	"strings"
	"testing"

	"fppc/internal/assays"
)

func TestMarkdown(t *testing.T) {
	md, err := Markdown(assays.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"# Regenerated evaluation",
		"## Table 1",
		"## Table 2",
		"## Table 3",
		"Protein Split 7",
		"[6.53]", // paper pin average shown beside ours
		"| 12x21 |",
		"our remap pins",
	} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown missing %q", frag)
		}
	}
	// PCR appears once in Table 1 and once in Table 2.
	if n := strings.Count(md, "| PCR |"); n != 2 {
		t.Errorf("PCR rows = %d, want 2", n)
	}
	// The "-" placeholders for infeasible Table 3 cells survive.
	if !strings.Contains(md, "| - |") {
		t.Errorf("missing '-' cells in Table 3")
	}
}
