// Package report renders the benchmark harness's results as Markdown,
// the format EXPERIMENTS.md uses, so the paper-vs-measured record can be
// regenerated mechanically after any change to the stack.
package report

import (
	"context"
	"fmt"
	"strings"

	"fppc/internal/assays"
	"fppc/internal/bench"
	"fppc/internal/obs"
)

// Paper-published Table 1 values for the side-by-side columns.
var paperTable1 = map[string][4]float64{ // DA routing, FP routing, DA ops, FP ops
	"PCR":             {0.7, 2.1, 11, 11},
	"In-Vitro 1":      {0.7, 2.6, 14, 14},
	"In-Vitro 2":      {1.2, 3.8, 18, 18},
	"In-Vitro 3":      {1.9, 6.2, 22, 18},
	"In-Vitro 4":      {1.8, 8.8, 24, 19},
	"In-Vitro 5":      {2.9, 11.6, 32, 25},
	"Protein Split 1": {1.8, 2.9, 71, 71},
	"Protein Split 2": {6.2, 6.1, 106, 106},
	"Protein Split 3": {13.9, 13.5, 176, 176},
	"Protein Split 4": {32.9, 29.3, 316, 316},
	"Protein Split 5": {63.6, 61.4, 670, 596},
	"Protein Split 6": {161.2, 127.4, 1156, 1156},
	"Protein Split 7": {290.3, 260.6, 2353, 2276},
}

// Markdown runs all three tables and renders a Markdown document with
// measured values beside the paper's.
func Markdown(tm assays.Timing) (string, error) {
	return MarkdownObserved(tm, nil)
}

// MarkdownObserved is Markdown with Table 1 compilations recorded on ob.
func MarkdownObserved(tm assays.Timing, ob *obs.Observer) (string, error) {
	return MarkdownContext(nil, tm, ob)
}

// MarkdownContext is MarkdownObserved under a context: cancellation or
// deadline expiry aborts between (and cooperatively inside)
// compilations. A nil ctx never cancels.
func MarkdownContext(ctx context.Context, tm assays.Timing, ob *obs.Observer) (string, error) {
	var b strings.Builder
	b.WriteString("# Regenerated evaluation (measured vs. paper)\n\n")

	rows, avg, err := bench.Table1Context(ctx, tm, ob)
	if err != nil {
		return "", err
	}
	b.WriteString("## Table 1 — DA vs FP\n\n")
	b.WriteString("| Benchmark | FP array | FP pins | DA rt s [paper] | FP rt s [paper] | DA op s [paper] | FP op s [paper] | synth ms (DA/FP) |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		p := paperTable1[r.Name]
		fmt.Fprintf(&b, "| %s | %dx%d | %d | %.1f [%.1f] | %.1f [%.1f] | %.0f [%.0f] | %.0f [%.0f] | %.1f / %.1f |\n",
			r.Name, r.FP.W, r.FP.H, r.FP.Pins,
			r.DA.RoutingS, p[0], r.FP.RoutingS, p[1], r.DA.OpsS, p[2], r.FP.OpsS, p[3],
			r.DA.SynthMS, r.FP.SynthMS)
	}
	fmt.Fprintf(&b, "\nAverages (>1 favors FP): electrodes %.2f [1.82], pins %.2f [6.53], routing %.2f [0.68], operations %.2f [1.07], total %.2f [0.98]\n\n",
		avg.Electrodes, avg.Pins, avg.Routing, avg.Operations, avg.Total)

	t2, err := bench.Table2Context(ctx, tm, nil)
	if err != nil {
		return "", err
	}
	b.WriteString("## Table 2 — assay-specific pin-constrained chips\n\n")
	b.WriteString("| Benchmark | Xu pins | Luo pins | FP dim | FP pins | our remap pins |\n|---|---|---|---|---|---|\n")
	for _, r := range t2 {
		remap := "-"
		if r.RemapPins > 0 {
			remap = fmt.Sprintf("%d", r.RemapPins)
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %s | %d | %s |\n",
			r.Benchmark, r.XuPins, r.LuoPins, r.FPDim, r.FPPins, remap)
	}
	b.WriteString("\n")

	t3, err := bench.Table3Context(ctx, tm, nil, 0, nil)
	if err != nil {
		return "", err
	}
	b.WriteString("## Table 3 — FPPC size sweep\n\n")
	b.WriteString("| Array | Mix/SSD | Pins | PCR s | In-Vitro 1 s | Protein Split 3 s |\n|---|---|---|---|---|---|\n")
	cell := func(r bench.Table3Row, name string) string {
		if v := r.TotalS[name]; v >= 0 {
			return fmt.Sprintf("%.2f", v)
		}
		return "-"
	}
	for _, r := range t3 {
		fmt.Fprintf(&b, "| 12x%d | %d/%d | %d | %s | %s | %s |\n",
			r.H, r.Mix, r.SSD, r.Pins,
			cell(r, "PCR"), cell(r, "In-Vitro 1"), cell(r, "Protein Split 3"))
	}
	return b.String(), nil
}
