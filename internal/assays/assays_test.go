package assays

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fppc/internal/dag"
)

func TestPCRShape(t *testing.T) {
	a := PCR(DefaultTiming())
	if err := a.Validate(); err != nil {
		t.Fatalf("PCR invalid: %v", err)
	}
	st, err := a.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ByKind[dag.Dispense] != 8 || st.ByKind[dag.Mix] != 7 || st.ByKind[dag.Output] != 1 {
		t.Errorf("PCR kind counts = %v, want 8 dispenses, 7 mixes, 1 output", st.ByKind)
	}
	if st.Nodes != 16 {
		t.Errorf("PCR nodes = %d, want 16", st.Nodes)
	}
	// Critical path: dispense 2 + three mix levels x 3 = 11 s, matching the
	// paper's Table 1 operation time for PCR.
	if st.CriticalPath != 11 {
		t.Errorf("PCR critical path = %d, want 11", st.CriticalPath)
	}
}

func TestInVitroShapes(t *testing.T) {
	tm := DefaultTiming()
	cases := []struct {
		n            int
		chains       int
		criticalPath int
	}{
		{1, 4, 2 + 3 + 7}, // max detect over reagents 1-2 is glucose 7
		{2, 6, 2 + 3 + 8}, // pyruvate 8 joins at r=3
		{3, 9, 2 + 3 + 8},
		{4, 12, 2 + 3 + 8},
		{5, 16, 2 + 3 + 8},
	}
	for _, c := range cases {
		a := InVitroN(c.n, tm)
		if err := a.Validate(); err != nil {
			t.Fatalf("In-Vitro %d invalid: %v", c.n, err)
		}
		st, _ := a.ComputeStats()
		if st.ByKind[dag.Mix] != c.chains || st.ByKind[dag.Detect] != c.chains {
			t.Errorf("In-Vitro %d: %d mixes/%d detects, want %d each",
				c.n, st.ByKind[dag.Mix], st.ByKind[dag.Detect], c.chains)
		}
		if st.Nodes != 5*c.chains {
			t.Errorf("In-Vitro %d nodes = %d, want %d", c.n, st.Nodes, 5*c.chains)
		}
		if st.CriticalPath != c.criticalPath {
			t.Errorf("In-Vitro %d critical path = %d, want %d", c.n, st.CriticalPath, c.criticalPath)
		}
	}
}

func TestInVitroRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("InVitro(5,1) did not panic")
		}
	}()
	InVitro(5, 1, DefaultTiming())
}

func TestInVitroNRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("InVitroN(0) did not panic")
		}
	}()
	InVitroN(0, DefaultTiming())
}

func TestProteinSplitShape(t *testing.T) {
	tm := DefaultTiming()
	for levels := 0; levels <= 7; levels++ {
		a := ProteinSplit(levels, tm)
		if err := a.Validate(); err != nil {
			t.Fatalf("ProteinSplit(%d) invalid: %v", levels, err)
		}
		st, _ := a.ComputeStats()
		branches := 1 << levels
		// 1 sample + 3 nodes per tree vertex + (4 dilutions x 4 nodes +
		// detect + output) per branch.
		wantNodes := 1 + 3*(branches-1) + branches*(4*proteinDilutions+2)
		if st.Nodes != wantNodes {
			t.Errorf("ProteinSplit(%d) nodes = %d, want %d", levels, st.Nodes, wantNodes)
		}
		if st.ByKind[dag.Detect] != branches {
			t.Errorf("ProteinSplit(%d) detects = %d, want %d", levels, st.ByKind[dag.Detect], branches)
		}
		wantDispense := 1 + (branches - 1) + branches*proteinDilutions
		if st.ByKind[dag.Dispense] != wantDispense {
			t.Errorf("ProteinSplit(%d) dispenses = %d, want %d", levels, st.ByKind[dag.Dispense], wantDispense)
		}
	}
}

func TestProteinSplit7NodeCountNearPaper(t *testing.T) {
	// The paper reports 2556 nodes for Protein Split 7 (supplemental S3);
	// our reconstruction gives 2686 (within ~5%, documented in DESIGN.md).
	a := ProteinSplit(7, DefaultTiming())
	if a.Len() < 2300 || a.Len() > 2900 {
		t.Errorf("ProteinSplit(7) has %d nodes, want within 2300..2900 (paper: 2556)", a.Len())
	}
}

func TestProteinSplitReservoirs(t *testing.T) {
	a := ProteinSplit(3, DefaultTiming())
	if got := a.ReservoirCount("buffer"); got != 2 {
		t.Errorf("buffer reservoirs = %d, want 2", got)
	}
	if got := a.ReservoirCount("protein"); got != 1 {
		t.Errorf("protein reservoirs = %d, want 1", got)
	}
	if got := a.ReservoirCount("unknown-fluid"); got != 1 {
		t.Errorf("default reservoirs = %d, want 1", got)
	}
}

func TestProteinSplitRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("ProteinSplit(-1) did not panic")
		}
	}()
	ProteinSplit(-1, DefaultTiming())
}

func TestWithDispenseAblation(t *testing.T) {
	tm := DefaultTiming()
	orig := ProteinSplit(3, tm)
	fast := WithDispense(orig, 2)
	if err := fast.Validate(); err != nil {
		t.Fatalf("ablated assay invalid: %v", err)
	}
	for _, n := range fast.Nodes {
		if n.Kind == dag.Dispense && n.Duration != 2 {
			t.Errorf("dispense %q still has duration %d", n.Label, n.Duration)
		}
	}
	// Original must be untouched.
	for _, n := range orig.Nodes {
		if n.Kind == dag.Dispense && n.Duration != tm.ProteinDispense {
			t.Errorf("original dispense %q mutated to %d", n.Label, n.Duration)
		}
	}
	cpFast, _ := fast.CriticalPath()
	cpOrig, _ := orig.CriticalPath()
	if cpFast >= cpOrig {
		t.Errorf("ablation did not shorten critical path: %d vs %d", cpFast, cpOrig)
	}
}

func TestTable1Benchmarks(t *testing.T) {
	bs := Table1Benchmarks(DefaultTiming())
	if len(bs) != 13 {
		t.Fatalf("Table1Benchmarks returned %d assays, want 13", len(bs))
	}
	wantNames := []string{
		"PCR", "In-Vitro 1", "In-Vitro 2", "In-Vitro 3", "In-Vitro 4",
		"In-Vitro 5", "Protein Split 1", "Protein Split 2", "Protein Split 3",
		"Protein Split 4", "Protein Split 5", "Protein Split 6", "Protein Split 7",
	}
	for i, b := range bs {
		if b.Name != wantNames[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, wantNames[i])
		}
		if err := b.Validate(); err != nil {
			t.Errorf("benchmark %q invalid: %v", b.Name, err)
		}
	}
}

func TestRandomAssaysValidate(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%100) + 5
		a := Random(rng, n, DefaultTiming())
		return a.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRandomAssayTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(rng, 60, DefaultTiming())
	// Every leaf (no children) must be an output: no dangling droplets.
	for _, n := range a.Nodes {
		if len(n.Children) == 0 && n.Kind != dag.Output {
			t.Errorf("leaf node %q has kind %v, want output", n.Label, n.Kind)
		}
	}
}

func BenchmarkGenerateProteinSplit7(b *testing.B) {
	tm := DefaultTiming()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ProteinSplit(7, tm)
	}
}

func TestSerialDilution(t *testing.T) {
	tm := DefaultTiming()
	a := SerialDilution(4, tm)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	st, _ := a.ComputeStats()
	if st.ByKind[dag.Split] != 4 || st.ByKind[dag.Detect] != 5 {
		t.Errorf("kinds = %v, want 4 splits and 5 detects", st.ByKind)
	}
	// Concentration halves each rung (verified via flow analysis).
	flows, err := dag.AnalyzeFlow(a)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"DT1": 0.5, "DT2": 0.25, "DT3": 0.125, "DT4": 0.0625, "DTF": 0.0625}
	for _, f := range flows {
		n := a.Node(f.Consumer)
		if w, ok := want[n.Label]; ok {
			if got := f.Concentration["protein"]; got != w {
				t.Errorf("%s concentration = %v, want %v", n.Label, got, w)
			}
		}
	}
}

func TestSerialDilutionRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("SerialDilution(0) did not panic")
		}
	}()
	SerialDilution(0, DefaultTiming())
}
