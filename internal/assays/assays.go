// Package assays generates the benchmark assay DAGs used throughout the
// paper's evaluation: the PCR mixing stage, the In-Vitro diagnostics
// family, and the Protein Split family [Su & Chakrabarty benchmark suite;
// Grissom & Brisk DAC'12]. It also provides random well-formed assays for
// property-based testing.
//
// Operation latencies follow the published values where available and are
// otherwise calibrated so the reproduced tables land near the paper's:
// dispense 2 s (7 s for protein fluids, per section 5.2), mixing 3 s in a
// 2x4 mixer, in-vitro detection ~9-12 s, protein detection 30 s.
package assays

import (
	"fmt"
	"math/rand"

	"fppc/internal/dag"
)

// Timing collects the operation latencies (in 1 s time-steps) used by the
// generators.
type Timing struct {
	Dispense        int    // standard droplet dispense
	ProteinDispense int    // protein/buffer dispense (section 5.2: 7 s)
	Mix             int    // merge+mix in a 2x4 mixer
	InVitroDetect   [4]int // per-reagent enzymatic detection times
	ProteinDetect   int    // protein optical detection
}

// DefaultTiming returns the latencies used in the paper's experiments.
func DefaultTiming() Timing {
	return Timing{
		Dispense:        2,
		ProteinDispense: 7,
		Mix:             3,
		InVitroDetect:   [4]int{7, 6, 8, 7}, // glucose, lactate, pyruvate, glutamate
		ProteinDetect:   30,
	}
}

// invitroReagents names the in-vitro assay enzymes in reagent order.
var invitroReagents = [4]string{"glucose", "lactate", "pyruvate", "glutamate"}

// pcrReagents are the eight PCR master-mix inputs.
var pcrReagents = [8]string{
	"tris-hcl", "kcl", "gelatin", "beef-extract",
	"bovine-serum", "primer", "lambda-dna", "deoxynucleotide",
}

// PCR builds the polymerase chain reaction mixing stage: eight reagent
// dispenses combined by a balanced binary mixing tree of seven mixes,
// ending in one output (critical path 2 + 3x3 = 11 s with default timing).
func PCR(tm Timing) *dag.Assay {
	a := dag.New("PCR")
	level := make([]*dag.Node, 0, 8)
	for i, fluid := range pcrReagents {
		d := a.Add(dag.Dispense, fmt.Sprintf("D%d", i+1), fluid, tm.Dispense)
		a.SetReservoirs(fluid, 1) // each reagent has its own port
		level = append(level, d)
	}
	mixID := 0
	for len(level) > 1 {
		next := make([]*dag.Node, 0, len(level)/2)
		for i := 0; i+1 < len(level); i += 2 {
			mixID++
			m := a.Add(dag.Mix, fmt.Sprintf("M%d", mixID), "", tm.Mix)
			a.AddEdge(level[i], m)
			a.AddEdge(level[i+1], m)
			next = append(next, m)
		}
		level = next
	}
	out := a.Add(dag.Output, "O1", "product", 0)
	a.AddEdge(level[0], out)
	return a
}

// InVitro builds the s-samples x r-reagents in-vitro diagnostics assay:
// every sample is assayed with every reagent (dispense both, mix, detect,
// output). The five paper configurations are InVitro(2,2), (2,3), (3,3),
// (3,4) and (4,4).
func InVitro(samples, reagents int, tm Timing) *dag.Assay {
	if samples < 1 || samples > 4 || reagents < 1 || reagents > 4 {
		panic(fmt.Sprintf("assays: InVitro(%d,%d) out of the benchmark range 1..4", samples, reagents))
	}
	a := dag.New(fmt.Sprintf("InVitro-%dx%d", samples, reagents))
	// Plasma, serum, urine, saliva in the published benchmark. Two ports
	// per fluid keep dispensing mostly off the critical path: in the paper
	// in-vitro is module-bound rather than dispense-bound.
	for i := 1; i <= samples; i++ {
		a.SetReservoirs(fmt.Sprintf("sample%d", i), 2)
	}
	for j := 0; j < reagents; j++ {
		a.SetReservoirs(invitroReagents[j], 2)
	}
	for i := 1; i <= samples; i++ {
		for j := 0; j < reagents; j++ {
			ds := a.Add(dag.Dispense, fmt.Sprintf("DS%d_%d", i, j+1), fmt.Sprintf("sample%d", i), tm.Dispense)
			dr := a.Add(dag.Dispense, fmt.Sprintf("DR%d_%d", i, j+1), invitroReagents[j], tm.Dispense)
			m := a.Add(dag.Mix, fmt.Sprintf("M%d_%d", i, j+1), "", tm.Mix)
			det := a.Add(dag.Detect, fmt.Sprintf("DT%d_%d", i, j+1), "", tm.InVitroDetect[j])
			out := a.Add(dag.Output, fmt.Sprintf("O%d_%d", i, j+1), "waste", 0)
			a.AddEdge(ds, m)
			a.AddEdge(dr, m)
			a.AddEdge(m, det)
			a.AddEdge(det, out)
		}
	}
	return a
}

// InVitroN returns the paper's In-Vitro benchmark number n (1..5).
func InVitroN(n int, tm Timing) *dag.Assay {
	configs := [5][2]int{{2, 2}, {2, 3}, {3, 3}, {3, 4}, {4, 4}}
	if n < 1 || n > 5 {
		panic(fmt.Sprintf("assays: InVitroN(%d) outside 1..5", n))
	}
	c := configs[n-1]
	a := InVitro(c[0], c[1], tm)
	a.Name = fmt.Sprintf("In-Vitro %d", n)
	return a
}

// proteinDilutions is the number of serial dilution rounds each leaf
// branch of the protein assay performs before detection.
const proteinDilutions = 4

// ProteinSplit builds the protein serial-dilution benchmark with the given
// number of exponential split levels (1..7 in the paper). Structure:
//
//   - dispense the protein sample (7 s)
//   - a binary dilution tree of `levels` levels: each node dilutes
//     (dispense buffer, mix) and splits into two sub-droplets
//   - each of the 2^levels leaf droplets then runs proteinDilutions serial
//     dilution rounds (dispense buffer, mix, split, waste one half),
//     followed by a 30 s detection and output.
//
// The buffer fluid has two dispense ports, so large instances are bound by
// the 7 s buffer dispense latency, which reproduces the paper's
// observation that Protein Split 3's execution time is dispense-limited.
func ProteinSplit(levels int, tm Timing) *dag.Assay {
	if levels < 0 || levels > 12 {
		panic(fmt.Sprintf("assays: ProteinSplit(%d) out of range 0..12", levels))
	}
	a := dag.New(fmt.Sprintf("Protein Split %d", levels))
	a.SetReservoirs("protein", 1)
	a.SetReservoirs("buffer", 2)
	a.SetReservoirs("waste", 4)

	sample := a.Add(dag.Dispense, "DS", "protein", tm.ProteinDispense)

	// Exponential phase: each tree level dilutes then splits every droplet.
	frontier := []*dag.Node{sample}
	for lvl := 1; lvl <= levels; lvl++ {
		next := make([]*dag.Node, 0, 2*len(frontier))
		for i, parent := range frontier {
			tag := fmt.Sprintf("T%d_%d", lvl, i)
			buf := a.Add(dag.Dispense, "DB"+tag, "buffer", tm.ProteinDispense)
			mix := a.Add(dag.Mix, "MX"+tag, "", tm.Mix)
			spl := a.Add(dag.Split, "SP"+tag, "", 0)
			a.AddEdge(parent, mix)
			a.AddEdge(buf, mix)
			a.AddEdge(mix, spl)
			// Both halves continue to the next level; Split's two children
			// are the next level's consumers.
			next = append(next, spl, spl)
		}
		frontier = next
	}

	// Dilution phase: each leaf droplet runs serial dilutions, then detect.
	for b := 0; b < len(frontier); b++ {
		cur := frontier[b]
		for d := 1; d <= proteinDilutions; d++ {
			tag := fmt.Sprintf("B%d_%d", b, d)
			buf := a.Add(dag.Dispense, "DB"+tag, "buffer", tm.ProteinDispense)
			mix := a.Add(dag.Mix, "MX"+tag, "", tm.Mix)
			spl := a.Add(dag.Split, "SP"+tag, "", 0)
			waste := a.Add(dag.Output, "OW"+tag, "waste", 0)
			a.AddEdge(cur, mix)
			a.AddEdge(buf, mix)
			a.AddEdge(mix, spl)
			a.AddEdge(spl, waste)
			cur = spl
		}
		det := a.Add(dag.Detect, fmt.Sprintf("DT%d", b), "", tm.ProteinDetect)
		out := a.Add(dag.Output, fmt.Sprintf("OP%d", b), "product", 0)
		a.AddEdge(cur, det)
		a.AddEdge(det, out)
	}
	return a
}

// WithDispense returns a copy of the assay whose protein-class dispenses
// (7 s and longer) are replaced by the given duration. This implements the
// paper's section 5.2 ablation: 2 s dispenses cut Protein Split 3 from
// ~189 s to ~100 s.
func WithDispense(a *dag.Assay, duration int) *dag.Assay {
	c := a.Clone()
	c.Name = fmt.Sprintf("%s (dispense %ds)", a.Name, duration)
	for _, n := range c.Nodes {
		if n.Kind == dag.Dispense {
			n.Duration = duration
		}
	}
	return c
}

// Table1Benchmarks returns the paper's thirteen Table 1 assays in
// publication order.
func Table1Benchmarks(tm Timing) []*dag.Assay {
	out := []*dag.Assay{PCR(tm)}
	for n := 1; n <= 5; n++ {
		out = append(out, InVitroN(n, tm))
	}
	for l := 1; l <= 7; l++ {
		out = append(out, ProteinSplit(l, tm))
	}
	return out
}

// Random builds a random well-formed assay with roughly n operations, for
// property-based testing. Every generated assay validates, uses only
// fluids with declared reservoirs, and terminates every droplet path in
// an output. The generator grows a frontier of live droplets and
// repeatedly merges, splits, detects or outputs them.
func Random(rng *rand.Rand, n int, tm Timing) *dag.Assay {
	a := dag.New(fmt.Sprintf("random-%d", n))
	a.SetReservoirs("fluidA", 2)
	a.SetReservoirs("fluidB", 1)
	var live []*dag.Node

	dispense := func() {
		fluid := "fluidA"
		if rng.Intn(2) == 0 {
			fluid = "fluidB"
		}
		d := a.Add(dag.Dispense, fmt.Sprintf("D%d", a.Len()), fluid, tm.Dispense)
		live = append(live, d)
	}
	take := func() *dag.Node {
		i := rng.Intn(len(live))
		n := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		return n
	}

	dispense()
	dispense()
	for a.Len() < n {
		switch choice := rng.Intn(10); {
		case choice < 3 || len(live) == 0:
			dispense()
		case choice < 6 && len(live) >= 2:
			m := a.Add(dag.Mix, fmt.Sprintf("M%d", a.Len()), "", tm.Mix)
			a.AddEdge(take(), m)
			a.AddEdge(take(), m)
			live = append(live, m)
		case choice < 7:
			s := a.Add(dag.Split, fmt.Sprintf("S%d", a.Len()), "", 0)
			a.AddEdge(take(), s)
			live = append(live, s, s)
		case choice < 9:
			d := a.Add(dag.Detect, fmt.Sprintf("T%d", a.Len()), "", 1+rng.Intn(5))
			a.AddEdge(take(), d)
			live = append(live, d)
		default:
			o := a.Add(dag.Output, fmt.Sprintf("O%d", a.Len()), "waste", 0)
			a.AddEdge(take(), o)
		}
	}
	// Drain the frontier. A split on the frontier may owe one or two
	// output edges, so keep consuming until nothing is live.
	for len(live) > 0 {
		o := a.Add(dag.Output, fmt.Sprintf("O%d", a.Len()), "waste", 0)
		a.AddEdge(take(), o)
	}
	return a
}

// SerialDilution builds an n-step 1:1 dilution ladder: each rung mixes
// the carry droplet with buffer, splits it, detects one half and carries
// the other to the next rung (the calibration-curve workhorse of
// quantitative assays). The final carry is also detected.
func SerialDilution(steps int, tm Timing) *dag.Assay {
	if steps < 1 {
		panic(fmt.Sprintf("assays: SerialDilution(%d)", steps))
	}
	a := dag.New(fmt.Sprintf("Serial Dilution %d", steps))
	a.SetReservoirs("protein", 1)
	a.SetReservoirs("buffer", 2)
	carry := a.Add(dag.Dispense, "DS", "protein", tm.ProteinDispense)
	for i := 1; i <= steps; i++ {
		buf := a.Add(dag.Dispense, fmt.Sprintf("DB%d", i), "buffer", tm.ProteinDispense)
		mix := a.Add(dag.Mix, fmt.Sprintf("MX%d", i), "", tm.Mix)
		spl := a.Add(dag.Split, fmt.Sprintf("SP%d", i), "", 0)
		det := a.Add(dag.Detect, fmt.Sprintf("DT%d", i), "", tm.ProteinDetect)
		out := a.Add(dag.Output, fmt.Sprintf("OP%d", i), "product", 0)
		a.AddEdge(carry, mix)
		a.AddEdge(buf, mix)
		a.AddEdge(mix, spl)
		a.AddEdge(spl, det)
		a.AddEdge(det, out)
		if i < steps {
			carry = spl
		} else {
			last := a.Add(dag.Detect, "DTF", "", tm.ProteinDetect)
			lout := a.Add(dag.Output, "OPF", "product", 0)
			a.AddEdge(spl, last)
			a.AddEdge(last, lout)
		}
	}
	return a
}
