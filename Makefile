# Development targets. `make check` is the gate CI (and PRs) must pass:
# formatting, vet and the full test suite under the race detector.

GO ?= go

.PHONY: all build check fmt vet test race bench bench-all benchdiff bench-baseline loadbench cover cover-update golden

all: build

build:
	$(GO) build ./...

check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH.json — the canonical benchmark artifact:
# Table 1 rows and the per-stage cost matrix (wall/CPU/allocs/bytes per
# compile stage, target and benchmark) from fppc-bench -json, plus
# go test -bench on the simulator and service hot paths. The PR-tagged
# copy records this PR's snapshot; benchdiff and CI read the stable
# path. bench-all still sweeps every micro-benchmark in the repo
# without writing the artifact.
bench:
	$(GO) run ./scripts/benchjson -o BENCH.json
	cp BENCH.json BENCH_PR10.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# benchdiff compares a fresh BENCH.json against the committed baseline
# — the perf ratchet. Deterministic count metrics (allocs, bytes) past
# +30% fail; time metrics warn. bench-baseline blesses the current
# numbers as the new baseline after an intentional change.
benchdiff: bench
	$(GO) run ./scripts/benchdiff -md benchdiff.md scripts/bench_baseline.json BENCH.json

bench-baseline: bench
	cp BENCH.json scripts/bench_baseline.json

# loadbench regenerates BENCH_LOAD.json: service latency percentiles
# and throughput per traffic mix from the open-loop load generator
# (compile mixes plus the chip-fleet mix with its per-chip
# placement/migration summary), run against an in-process server, with
# a runtime/metrics GC and heap summary. CI uploads the file as an
# artifact. Override LOADBENCH_FLAGS for longer runs or a live -addr.
LOADBENCH_FLAGS ?= -n 200 -rate 200
loadbench:
	$(GO) run ./cmd/fppc-load $(LOADBENCH_FLAGS) -o BENCH_LOAD.json

# cover enforces the coverage ratchet (scripts/coverage_floor.txt);
# cover-update raises the floor to the current total.
cover:
	sh scripts/coverage.sh

cover-update:
	sh scripts/coverage.sh -update

# golden regenerates the golden corpora — the oracle's pristine traces
# and the degraded-chip (fault-aware) compiles; CI fails if the result
# differs from what is checked in.
golden:
	$(GO) test ./internal/oracle -run TestGoldenTraces -update
	$(GO) test ./internal/faults -run TestGoldenDegraded -update
