# Development targets. `make check` is the gate CI (and PRs) must pass:
# formatting, vet and the full test suite under the race detector.

GO ?= go

.PHONY: all build check fmt vet test race bench bench-all loadbench cover cover-update golden

all: build

build:
	$(GO) build ./...

check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_PR8.json: the Table 1 rows from
# fppc-bench -json plus go test -bench on the simulator and service hot
# paths. CI uploads the file as an artifact. bench-all still sweeps
# every micro-benchmark in the repo without writing the artifact.
bench:
	$(GO) run ./scripts/benchjson -o BENCH_PR8.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# loadbench regenerates BENCH_PR7.json: service latency percentiles and
# throughput per traffic mix from the open-loop load generator (compile
# mixes plus the chip-fleet mix with its per-chip placement/migration
# summary), run against an in-process server. CI uploads the file as an
# artifact. Override LOADBENCH_FLAGS for longer runs or a live -addr.
LOADBENCH_FLAGS ?= -n 200 -rate 200
loadbench:
	$(GO) run ./cmd/fppc-load $(LOADBENCH_FLAGS) -o BENCH_PR7.json

# cover enforces the coverage ratchet (scripts/coverage_floor.txt);
# cover-update raises the floor to the current total.
cover:
	sh scripts/coverage.sh

cover-update:
	sh scripts/coverage.sh -update

# golden regenerates the golden corpora — the oracle's pristine traces
# and the degraded-chip (fault-aware) compiles; CI fails if the result
# differs from what is checked in.
golden:
	$(GO) test ./internal/oracle -run TestGoldenTraces -update
	$(GO) test ./internal/faults -run TestGoldenDegraded -update
