# Development targets. `make check` is the gate CI (and PRs) must pass:
# formatting, vet and the full test suite under the race detector.

GO ?= go

.PHONY: all build check fmt vet test race bench

all: build

build:
	$(GO) build ./...

check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
