// fppc-sim compiles an assay for the field-programmable pin-constrained
// chip, emits the per-cycle pin activation program, and replays it on the
// electrode-level droplet simulator, verifying the assay physically
// executes: every dispense, merge, split and output happens, no droplet
// drifts, tears or is left behind, and fluid volume is conserved.
//
// Usage:
//
//	fppc-sim -assay pcr
//	fppc-sim -assay pcr -target enhanced-fppc   # the 10x16 enhanced chip
//	fppc-sim -assay protein2 -rotations 12
//	fppc-sim -assay invitro1 -watch 25   # ASCII frames every 25 cycles
//	fppc-sim -assay pcr -telemetry t.json -heatmap   # chip wear telemetry
//	fppc-sim -assay pcr -inject "open@5,2;dead#7" -verify   # degraded chip
//
// Every observability flag composes with every other: -verify replays
// the same program through the independent oracle after the simulator
// pass, -trace/-metrics record the compile and simulate spans, and
// -telemetry/-telemetry-csv/-heatmap/-heatmap-svg export the chip
// telemetry collected during the replay (including under -watch, which
// feeds the same collector stepwise). See doc/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"fppc"
	"fppc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-sim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-sim", flag.ContinueOnError)
	name := fs.String("assay", "pcr", "built-in assay: pcr, invitroN, proteinN")
	target := fs.String("target", "", "architecture to simulate (a registered pin-program target: fppc, enhanced-fppc; default fppc)")
	height := fs.Int("height", 0, "FPPC chip height (0 = 12x21; fppc target only)")
	rotations := fs.Int("rotations", 1, "mixer rotations emitted per time-step")
	watch := fs.Int("watch", 0, "print an array frame every N cycles (0 = off)")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON file (compile + simulate spans)")
	metricsOut := fs.String("metrics", "", "write pipeline metrics in Prometheus text format")
	verify := fs.Bool("verify", false, "replay the program through the independent oracle and cross-check the simulator")
	telemetryOut := fs.String("telemetry", "", "write a chip telemetry snapshot (electrode wear, duty cycles, congestion) as JSON")
	telemetryCSV := fs.String("telemetry-csv", "", "write per-electrode telemetry as CSV")
	heatmap := fs.Bool("heatmap", false, "print an ASCII electrode-actuation heatmap after the replay")
	heatmapSVG := fs.String("heatmap-svg", "", "write the actuation heatmap as an SVG file")
	inject := fs.String("inject", "", `declare hardware faults ("open@x,y;closed@x,y;dead#pin"): the compiler synthesizes around them and the replay injects them`)
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}
	start := time.Now()
	defer func() { logger.Debug("done", "assay", *name, "dur", time.Since(start)) }()

	assay, err := builtin(*name)
	if err != nil {
		return err
	}
	spec, err := fppc.ParseTarget(*target)
	if err != nil {
		return err
	}
	if !spec.Capabilities.PinProgram {
		return fmt.Errorf("the %s target emits no pin program to replay; pick a pin-program target (fppc, enhanced-fppc)", spec.Name)
	}
	var faultSet *fppc.FaultSet
	if *inject != "" {
		faultSet, err = fppc.ParseFaultSpec(*inject)
		if err != nil {
			return err
		}
	}
	var ob *fppc.Observer
	if *traceOut != "" || *metricsOut != "" {
		ob = fppc.NewObserver()
	}
	var tc *fppc.TelemetryCollector
	if *telemetryOut != "" || *telemetryCSV != "" || *heatmap || *heatmapSVG != "" {
		tc = fppc.NewTelemetryCollector()
	}
	if faultSet != nil && *watch > 0 {
		return fmt.Errorf("-watch does not compose with -inject (the stepwise replay has no injector)")
	}
	cfg := fppc.Config{
		Target:     spec.ID,
		FPPCHeight: *height,
		AutoGrow:   true,
		Router:     fppc.RouterOptions{EmitProgram: true, RotationsPerStep: *rotations, Telemetry: tc},
		Obs:        ob,
	}
	cfg = fppc.WithFaults(cfg, faultSet)
	res, err := fppc.Compile(assay, cfg)
	if err != nil {
		return err
	}
	tc.AttachSchedule(res.Schedule)
	fmt.Fprintln(out, res.Summary())
	if faultSet != nil {
		disabled := 0
		for _, m := range res.Chip.Modules() {
			if m.Disabled {
				disabled++
			}
		}
		fmt.Fprintf(out, "faults: %s (%d declared, %d module slots disabled, replay injected)\n",
			faultSet, faultSet.Len(), disabled)
	}
	fmt.Fprintf(out, "program: %d cycles, %d reservoir events\n",
		res.Routing.Program.Len(), len(res.Routing.Events))

	var trace *fppc.SimTrace
	if *watch > 0 {
		replay := fppc.NewReplay(res.Chip, res.Routing.Program, res.Routing.Events)
		replay.Collect(tc)
		for !replay.Done() {
			if replay.Cycle()%*watch == 0 {
				fmt.Fprintln(out, replay.Frame())
			}
			replay.Step()
		}
		if replay.Err() != nil {
			return fmt.Errorf("simulation FAILED: %w", replay.Err())
		}
		trace = replay.Trace()
	} else {
		trace, err = fppc.SimulateInjected(res.Chip, res.Routing.Program, res.Routing.Events, ob, tc, faultSet)
		if err != nil {
			return fmt.Errorf("simulation FAILED: %w", err)
		}
	}
	st, err := assay.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "simulated: %d dispenses, %d merges, %d splits, %d outputs\n",
		trace.Dispenses, trace.Merges, trace.Splits, trace.Outputs)
	ok := trace.Dispenses == st.ByKind[fppc.Dispense] &&
		trace.Merges == st.ByKind[fppc.Mix] &&
		trace.Splits == st.ByKind[fppc.Split] &&
		trace.Outputs == st.ByKind[fppc.Output] &&
		len(trace.Remaining) == 0 &&
		math.Abs(trace.VolumeIn-trace.VolumeOut) < 1e-9
	if !ok {
		return fmt.Errorf("VERIFICATION FAILED: expected %d dispenses, %d mixes, %d splits, %d outputs; %d droplets remain",
			st.ByKind[fppc.Dispense], st.ByKind[fppc.Mix], st.ByKind[fppc.Split],
			st.ByKind[fppc.Output], len(trace.Remaining))
	}
	fmt.Fprintf(out, "verified: every operation executed, volume conserved (%.1f in = %.1f out)\n",
		trace.VolumeIn, trace.VolumeOut)
	if *verify {
		var opts fppc.OracleOptions
		if faultSet != nil {
			opts.Faults = faultSet
			opts.KnownFaults = true
		}
		rep, err := fppc.VerifyCompiled(res, opts)
		if err != nil {
			for _, v := range rep.Violations {
				fmt.Fprintf(out, "oracle violation: %v\n", v)
			}
			return fmt.Errorf("ORACLE FAILED: %w", err)
		}
		fmt.Fprintf(out, "oracle: independent replay agrees with the simulator (%d cycles, footprint %s)\n",
			rep.Cycles, rep.FootprintHash[:16])
	}
	if tc != nil {
		snap := tc.Snapshot()
		fmt.Fprintln(out, snap.Summary())
		if *heatmap {
			fmt.Fprint(out, snap.ActuationGrid().ASCII())
		}
		if *telemetryOut != "" {
			if err := snap.WriteJSONFile(*telemetryOut); err != nil {
				return err
			}
			fmt.Fprintf(out, "telemetry written to %s\n", *telemetryOut)
		}
		if *telemetryCSV != "" {
			if err := snap.WriteCSVFile(*telemetryCSV); err != nil {
				return err
			}
			fmt.Fprintf(out, "telemetry CSV written to %s\n", *telemetryCSV)
		}
		if *heatmapSVG != "" {
			if err := os.WriteFile(*heatmapSVG, []byte(snap.ActuationGrid().SVG()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "heatmap written to %s\n", *heatmapSVG)
		}
	}
	if *traceOut != "" {
		if err := ob.WriteChromeTraceFile(*traceOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := ob.WritePrometheusFile(*metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics written to %s\n", *metricsOut)
	}
	return nil
}

func builtin(name string) (*fppc.Assay, error) {
	tm := fppc.DefaultTiming()
	name = strings.ToLower(name)
	switch {
	case name == "pcr":
		return fppc.PCR(tm), nil
	case strings.HasPrefix(name, "invitro"):
		n, err := strconv.Atoi(name[len("invitro"):])
		if err != nil || n < 1 || n > 5 {
			return nil, fmt.Errorf("bad in-vitro index in %q", name)
		}
		return fppc.InVitroN(n, tm), nil
	case strings.HasPrefix(name, "protein"):
		n, err := strconv.Atoi(name[len("protein"):])
		if err != nil || n < 1 || n > 7 {
			return nil, fmt.Errorf("bad protein-split level in %q", name)
		}
		return fppc.ProteinSplit(n, tm), nil
	}
	return nil, fmt.Errorf("unknown assay %q", name)
}
