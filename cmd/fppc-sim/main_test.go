package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVerifiesPCR(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "pcr"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified: every operation executed") {
		t.Errorf("verification line missing:\n%s", out.String())
	}
}

func TestRunWatchFrames(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "invitro1", "-watch", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "cycle ") < 2 {
		t.Errorf("expected multiple frames:\n%.300s", out.String())
	}
}

func TestRunRotations(t *testing.T) {
	var thin, thick strings.Builder
	if err := run([]string{"-assay", "pcr", "-rotations", "1"}, &thin); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-assay", "pcr", "-rotations", "6"}, &thick); err != nil {
		t.Fatal(err)
	}
	// More rotations per step means a longer program; both must verify.
	if !strings.Contains(thick.String(), "verified") {
		t.Errorf("thick program failed verification")
	}
}

func TestRunTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	metrics := filepath.Join(dir, "m.prom")
	var out strings.Builder
	if err := run([]string{"-assay", "pcr", "-trace", trace, "-metrics", metrics}, &out); err != nil {
		t.Fatal(err)
	}
	tj, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tj), `"name":"simulate"`) || !strings.Contains(string(tj), `"name":"compile"`) {
		t.Errorf("trace missing compile/simulate spans")
	}
	mp, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"fppc_sim_cycles_total", "fppc_sim_merges_total 7"} {
		if !strings.Contains(string(mp), frag) {
			t.Errorf("metrics missing %s:\n%s", frag, mp)
		}
	}
}

func TestRunUnknownAssay(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "mystery"}, &out); err == nil {
		t.Errorf("unknown assay accepted")
	}
}
