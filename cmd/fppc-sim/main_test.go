package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVerifiesPCR(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "pcr"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified: every operation executed") {
		t.Errorf("verification line missing:\n%s", out.String())
	}
}

func TestRunWatchFrames(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "invitro1", "-watch", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "cycle ") < 2 {
		t.Errorf("expected multiple frames:\n%.300s", out.String())
	}
}

func TestRunRotations(t *testing.T) {
	var thin, thick strings.Builder
	if err := run([]string{"-assay", "pcr", "-rotations", "1"}, &thin); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-assay", "pcr", "-rotations", "6"}, &thick); err != nil {
		t.Fatal(err)
	}
	// More rotations per step means a longer program; both must verify.
	if !strings.Contains(thick.String(), "verified") {
		t.Errorf("thick program failed verification")
	}
}

func TestRunTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	metrics := filepath.Join(dir, "m.prom")
	var out strings.Builder
	if err := run([]string{"-assay", "pcr", "-trace", trace, "-metrics", metrics}, &out); err != nil {
		t.Fatal(err)
	}
	tj, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tj), `"name":"simulate"`) || !strings.Contains(string(tj), `"name":"compile"`) {
		t.Errorf("trace missing compile/simulate spans")
	}
	mp, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"fppc_sim_cycles_total", "fppc_sim_merges_total 7"} {
		if !strings.Contains(string(mp), frag) {
			t.Errorf("metrics missing %s:\n%s", frag, mp)
		}
	}
}

// simSnapshot is the subset of the telemetry JSON the CLI tests check.
type simSnapshot struct {
	Cycles         int   `json:"cycles"`
	PinActivations int64 `json:"total_pin_activations"`
	Electrodes     []struct {
		Actuations int64 `json:"actuations"`
	} `json:"electrodes"`
}

func readSnapshot(t *testing.T, path string) simSnapshot {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap simSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestRunAllObservabilityFlags runs every observability flag at once on
// PCR: -verify, -trace, -metrics, and the whole telemetry family. The
// flags must compose — same compile, same replay, every exporter fed.
func TestRunAllObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	tj := filepath.Join(dir, "telemetry.json")
	tcsv := filepath.Join(dir, "telemetry.csv")
	svg := filepath.Join(dir, "heat.svg")
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.prom")
	var out strings.Builder
	err := run([]string{"-assay", "pcr",
		"-verify",
		"-trace", trace, "-metrics", metrics,
		"-telemetry", tj, "-telemetry-csv", tcsv,
		"-heatmap", "-heatmap-svg", svg,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"verified: every operation executed",
		"oracle: independent replay agrees",
		"telemetry: ",
		"telemetry written to",
		"telemetry CSV written to",
		"heatmap written to",
		"trace written to",
		"metrics written to",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}

	snap := readSnapshot(t, tj)
	if snap.Cycles == 0 || snap.PinActivations == 0 {
		t.Fatalf("snapshot empty: %+v", snap)
	}
	// PCR on the default 12x21 chip: one CSV row per electrode cell.
	csvRaw, err := os.ReadFile(tcsv)
	if err != nil {
		t.Fatal(err)
	}
	if rows := strings.Count(string(csvRaw), "\n"); rows != len(snap.Electrodes)+1 {
		t.Errorf("CSV has %d rows, want %d electrodes + header", rows, len(snap.Electrodes))
	}
	svgRaw, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svgRaw), "<svg") {
		t.Errorf("heatmap file is not SVG: %.60s", svgRaw)
	}
	// The ASCII heatmap rides on stdout: at least one saturated glyph.
	if !strings.Contains(got, "@") {
		t.Errorf("ASCII heatmap missing from output:\n%s", got)
	}
}

// TestRunWatchWithTelemetry checks the stepwise -watch replay feeds the
// same collector as the batch path: identical totals either way.
func TestRunWatchWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	batch := filepath.Join(dir, "batch.json")
	watch := filepath.Join(dir, "watch.json")
	var out strings.Builder
	if err := run([]string{"-assay", "pcr", "-telemetry", batch}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-assay", "pcr", "-watch", "50", "-telemetry", watch}, &out); err != nil {
		t.Fatal(err)
	}
	b, w := readSnapshot(t, batch), readSnapshot(t, watch)
	if b.Cycles != w.Cycles || b.PinActivations != w.PinActivations {
		t.Errorf("watch replay diverged: batch %d cycles/%d activations, watch %d/%d",
			b.Cycles, b.PinActivations, w.Cycles, w.PinActivations)
	}
}

func TestRunUnknownAssay(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "mystery"}, &out); err == nil {
		t.Errorf("unknown assay accepted")
	}
}

func TestRunInjectedFaults(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "pcr", "-inject", "open@5,2;closed@9,4", "-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"faults: open@5,2;closed@9,4 (2 declared",
		"replay injected",
		"verified: every operation executed",
		"oracle: independent replay agrees",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunInjectErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "pcr", "-inject", "bogus@1,2"}, &out); err == nil {
		t.Error("malformed fault spec accepted")
	}
	if err := run([]string{"-assay", "pcr", "-inject", "open@5,2", "-watch", "10"}, &out); err == nil {
		t.Error("-watch with -inject accepted")
	}
}
