package main

import (
	"strings"
	"testing"
)

func TestRunTable3Only(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "9,15"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "12x9") || !strings.Contains(s, "12x15") {
		t.Errorf("height rows missing:\n%s", s)
	}
	if strings.Contains(s, "Table 1") {
		t.Errorf("table 1 printed for -table 3")
	}
}

func TestRunDispenseOverride(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "18", "-dispense", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "overridden to 2 s") {
		t.Errorf("override note missing")
	}
}

func TestRunTable2(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Multi-Function") {
		t.Errorf("table 2 incomplete")
	}
}

func TestRunBadHeights(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "x,y"}, &out); err == nil {
		t.Errorf("bad heights accepted")
	}
}
