package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fppc"
)

func TestRunTable3Only(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "9,15"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "12x9") || !strings.Contains(s, "12x15") {
		t.Errorf("height rows missing:\n%s", s)
	}
	if strings.Contains(s, "Table 1") {
		t.Errorf("table 1 printed for -table 3")
	}
}

func TestRunDispenseOverride(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "18", "-dispense", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "overridden to 2 s") {
		t.Errorf("override note missing")
	}
}

func TestRunTable2(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Multi-Function") {
		t.Errorf("table 2 incomplete")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "9", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Table3 []struct {
			H      int
			TotalS map[string]float64
		} `json:"table3"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if len(doc.Table3) != 1 || doc.Table3[0].H != 9 {
		t.Errorf("unexpected table3 rows: %+v", doc.Table3)
	}
	if doc.Table3[0].TotalS["PCR"] <= 0 {
		t.Errorf("PCR total missing from JSON: %+v", doc.Table3[0])
	}
}

func TestRunJSONCostMatrix(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "1", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Table1 []struct{ Name string } `json:"table1"`
		Cost   []struct {
			Benchmark, Target, Stage string
			WallMS                   float64
			Allocs, Bytes            int64
			Note                     string
		} `json:"cost"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%.300s", err, out.String())
	}
	if len(doc.Cost) == 0 {
		t.Fatal("cost section missing from -json -table 1 output")
	}
	targets := map[string]bool{}
	compileRows := 0
	for _, r := range doc.Cost {
		targets[r.Target] = true
		if r.Stage == "compile" {
			compileRows++
			if r.Note == "" && (r.Allocs <= 0 || r.Bytes <= 0) {
				t.Errorf("compile cost row without heap numbers: %+v", r)
			}
		}
	}
	for _, want := range []string{"fppc", "da", "enhanced-fppc"} {
		if !targets[want] {
			t.Errorf("cost matrix missing target %q (have %v)", want, targets)
		}
	}
	if want := len(doc.Table1) * 3; compileRows != want {
		t.Errorf("cost matrix has %d compile rows, want %d (benchmarks x targets)", compileRows, want)
	}
}

func TestRunJSONCostDisabled(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "1", "-json", "-cost=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), `"cost"`) {
		t.Error("-cost=false still emitted the cost section")
	}
}

func TestRunTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	metrics := filepath.Join(dir, "m.prom")
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "9", "-trace", trace, "-metrics", metrics}, &out); err != nil {
		t.Fatal(err)
	}
	tj, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tj), `"name":"compile"`) {
		t.Errorf("trace missing compile spans")
	}
	mp, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mp), "fppc_router_moves_total") {
		t.Errorf("metrics missing router counters:\n%s", mp)
	}
}

func TestRunTelemetryDir(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-table", "1", "-telemetry-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "telemetry snapshots written to") {
		t.Errorf("telemetry note missing:\n%.200s", out.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 13 {
		t.Fatalf("wrote %d snapshot files, want 13 (one per Table 1 benchmark)", len(ents))
	}
	// Spot-check one snapshot parses and carries electrode data.
	raw, err := os.ReadFile(filepath.Join(dir, "pcr.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Cycles         int   `json:"cycles"`
		PinActivations int64 `json:"total_pin_activations"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cycles == 0 || snap.PinActivations == 0 {
		t.Errorf("pcr snapshot empty: %+v", snap)
	}
}

func TestRunBadHeights(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-heights", "x,y"}, &out); err == nil {
		t.Errorf("bad heights accepted")
	}
}

func TestRunTimeoutAbortsWithTypedError(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-table", "1", "-timeout", "1ns"}, &out)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
	var ce *fppc.CompileCanceledError
	if !errors.As(err, &ce) {
		t.Errorf("error %v is not a *fppc.CompileCanceledError", err)
	}
}

func TestRunChaosCampaign(t *testing.T) {
	var out strings.Builder
	// -table 2 keeps the post-campaign report small; one fault set per
	// benchmark keeps the campaign itself a few seconds.
	if err := run([]string{"-faults", "1", "-fault-runs", "1", "-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "chaos: ") != 13 {
		t.Errorf("expected 13 chaos run lines:\n%s", s)
	}
	if !strings.Contains(s, "chaos campaign: 13 runs") {
		t.Errorf("campaign summary missing:\n%s", s)
	}
	if !strings.Contains(s, "0 missed") {
		t.Errorf("campaign summary does not report zero missed:\n%s", s)
	}
}
