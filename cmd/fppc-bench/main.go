// fppc-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	fppc-bench -table 1          # DA vs FPPC across the 13 benchmarks
//	fppc-bench -table 2          # comparison to assay-specific designs
//	fppc-bench -table 3          # FPPC array-size sweep
//	fppc-bench -table 3 -dispense 2   # section 5.2 dispense ablation
//	fppc-bench -markdown         # all tables as Markdown with paper values
//	fppc-bench -table 0          # everything (default)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"fppc/internal/assays"
	"fppc/internal/bench"
	"fppc/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-bench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-bench", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (1, 2 or 3; 0 = all)")
	dispense := fs.Int("dispense", 0, "override protein dispense latency in seconds (table 3)")
	heights := fs.String("heights", "", "comma-separated FPPC heights for table 3 (default 9,12,15,18,21)")
	markdown := fs.Bool("markdown", false, "emit all tables as Markdown with paper values inline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tm := assays.DefaultTiming()
	if *markdown {
		md, err := report.Markdown(tm)
		if err != nil {
			return err
		}
		fmt.Fprint(out, md)
		return nil
	}
	if *table == 0 || *table == 1 {
		rows, avg, err := bench.Table1(tm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, bench.FormatTable1(rows, avg))
	}
	if *table == 0 || *table == 2 {
		rows, err := bench.Table2(tm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, bench.FormatTable2(rows))
	}
	if *table == 0 || *table == 3 {
		var hs []int
		if *heights != "" {
			for _, f := range strings.Split(*heights, ",") {
				h, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return fmt.Errorf("bad height %q: %w", f, err)
				}
				hs = append(hs, h)
			}
		}
		rows, err := bench.Table3(tm, hs, *dispense)
		if err != nil {
			return err
		}
		if *dispense > 0 {
			fmt.Fprintf(out, "(protein dispense latency overridden to %d s)\n", *dispense)
		}
		fmt.Fprintln(out, bench.FormatTable3(rows))
	}
	return nil
}
