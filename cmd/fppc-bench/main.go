// fppc-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	fppc-bench -table 1          # DA vs FPPC vs enhanced FPPC across the 13 benchmarks
//	fppc-bench -table 2          # comparison to assay-specific designs
//	fppc-bench -table 3          # FPPC array-size sweep
//	fppc-bench -table 3 -dispense 2   # section 5.2 dispense ablation
//	fppc-bench -markdown         # all tables as Markdown with paper values
//	fppc-bench -table 0          # everything (default)
//	fppc-bench -faults 3         # chaos campaign: random hardware faults
//	                             # over every benchmark, zero tolerated misses
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fppc/internal/assays"
	"fppc/internal/bench"
	"fppc/internal/cli"
	"fppc/internal/core"
	"fppc/internal/faults"
	"fppc/internal/obs"
	"fppc/internal/report"
	"fppc/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-bench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-bench", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (1, 2 or 3; 0 = all)")
	dispense := fs.Int("dispense", 0, "override protein dispense latency in seconds (table 3)")
	heights := fs.String("heights", "", "comma-separated FPPC heights for table 3 (default 9,12,15,18,21)")
	markdown := fs.Bool("markdown", false, "emit all tables as Markdown with paper values inline")
	jsonOut := fs.Bool("json", false, "emit the selected tables as JSON")
	cost := fs.Bool("cost", true, "with -json and table 0|1: emit the per-stage cost matrix (wall, CPU, allocs, bytes per benchmark x target)")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON file of the runs")
	metricsOut := fs.String("metrics", "", "write pipeline metrics in Prometheus text format")
	timeout := fs.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	verify := fs.Bool("verify", false, "run the independent oracle over the Table 1 suite before reporting")
	telemetryDir := fs.String("telemetry-dir", "", "collect chip telemetry for the Table 1 FPPC runs and write per-benchmark snapshot JSONs into this directory")
	faultMax := fs.Int("faults", 0, "run the chaos campaign before reporting: up to N random hardware faults per set over every Table 1 benchmark (0 = off)")
	faultRuns := fs.Int("fault-runs", 3, "fault sets per benchmark for -faults")
	faultSeed := fs.Int64("fault-seed", 1, "random seed for -faults")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}
	logger.Debug("benchmarking", "table", *table, "markdown", *markdown)

	var ctx context.Context
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		defer cancel()
	}
	var ob *obs.Observer
	if *traceOut != "" || *metricsOut != "" {
		ob = obs.New()
	}
	tm := assays.DefaultTiming()
	if *faultMax > 0 {
		res, err := faults.Campaign(assays.Table1Benchmarks(tm), faults.CampaignConfig{
			Target:    core.TargetFPPC,
			Runs:      *faultRuns,
			MaxFaults: *faultMax,
			AllowDead: true,
			Seed:      *faultSeed,
		})
		if err != nil {
			return fmt.Errorf("fault campaign: %w", err)
		}
		for _, r := range res.Runs {
			fmt.Fprintf(out, "chaos: %-18s %-15s %s\n", r.Assay, r.Outcome, r.Faults)
		}
		fmt.Fprintf(out, "chaos campaign: %s\n", res.Summary())
		if res.Missed > 0 {
			return fmt.Errorf("fault campaign: %d runs MISSED a hardware fault", res.Missed)
		}
	}
	if *verify {
		if err := bench.VerifyTable1(ctx, tm); err != nil {
			return err
		}
		fmt.Fprintln(out, "verified: all 13 benchmarks pass the independent oracle and pairwise schedule equivalence on every registered target")
	}
	if *markdown {
		md, err := report.MarkdownContext(ctx, tm, ob)
		if err != nil {
			return err
		}
		fmt.Fprint(out, md)
		return writeObs(out, ob, *traceOut, *metricsOut)
	}
	// doc collects the selected tables for -json output.
	doc := struct {
		Table1         []bench.Table1Row     `json:"table1,omitempty"`
		Table1Averages *bench.Table1Averages `json:"table1_averages,omitempty"`
		Table2         []bench.Table2Row     `json:"table2,omitempty"`
		Table3         []bench.Table3Row     `json:"table3,omitempty"`
		Cost           []bench.CostRow       `json:"cost,omitempty"`
	}{}
	if *table == 0 || *table == 1 {
		var rows []bench.Table1Row
		var avg bench.Table1Averages
		var err error
		if *telemetryDir != "" {
			var snaps map[string]*telemetry.Snapshot
			rows, avg, snaps, err = bench.Table1Telemetry(ctx, tm, ob)
			if err == nil {
				err = writeTelemetryDir(*telemetryDir, snaps)
			}
			if err == nil {
				fmt.Fprintf(out, "telemetry snapshots written to %s\n", *telemetryDir)
			}
		} else {
			rows, avg, err = bench.Table1Context(ctx, tm, ob)
		}
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Table1, doc.Table1Averages = rows, &avg
		} else {
			fmt.Fprintln(out, bench.FormatTable1(rows, avg))
		}
	}
	if *table == 0 || *table == 2 {
		rows, err := bench.Table2Context(ctx, tm, ob)
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Table2 = rows
		} else {
			fmt.Fprintln(out, bench.FormatTable2(rows))
		}
	}
	if *table == 0 || *table == 3 {
		var hs []int
		if *heights != "" {
			for _, f := range strings.Split(*heights, ",") {
				h, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return fmt.Errorf("bad height %q: %w", f, err)
				}
				hs = append(hs, h)
			}
		}
		rows, err := bench.Table3Context(ctx, tm, hs, *dispense, ob)
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Table3 = rows
		} else {
			if *dispense > 0 {
				fmt.Fprintf(out, "(protein dispense latency overridden to %d s)\n", *dispense)
			}
			fmt.Fprintln(out, bench.FormatTable3(rows))
		}
	}
	if *jsonOut && *cost && (*table == 0 || *table == 1) {
		rows, err := bench.CostMatrix(ctx, tm)
		if err != nil {
			return err
		}
		doc.Cost = rows
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	}
	return writeObs(out, ob, *traceOut, *metricsOut)
}

// writeTelemetryDir writes one chip-telemetry snapshot JSON per
// benchmark, named by a filesystem-safe slug of the benchmark name.
func writeTelemetryDir(dir string, snaps map[string]*telemetry.Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, snap := range snaps {
		slug := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
				return r
			case r >= 'A' && r <= 'Z':
				return r + ('a' - 'A')
			default:
				return '-'
			}
		}, name)
		if err := snap.WriteJSONFile(filepath.Join(dir, slug+".json")); err != nil {
			return err
		}
	}
	return nil
}

// writeObs flushes the observer's trace and metrics files when requested.
func writeObs(out io.Writer, ob *obs.Observer, tracePath, metricsPath string) error {
	if tracePath != "" {
		if err := ob.WriteChromeTraceFile(tracePath); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s\n", tracePath)
	}
	if metricsPath != "" {
		if err := ob.WritePrometheusFile(metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics written to %s\n", metricsPath)
	}
	return nil
}
