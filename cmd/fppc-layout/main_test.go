package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"fppc-12x15", "33 pins", "mix[0]", "ssd[5]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestRunDAWithChecks(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-da", "-w", "15", "-h", "19", "-check", "-wiring"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "design rules: OK") || !strings.Contains(s, "PCB layer") {
		t.Errorf("checks missing from output:\n%s", s)
	}
}

func TestRunExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chip.json")
	var out strings.Builder
	if err := run([]string{"-height", "9", "-export", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"pin\"") {
		t.Errorf("export missing pin fields")
	}
}

func TestRunBadSize(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-height", "3"}, &out); err == nil {
		t.Errorf("tiny chip accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Errorf("bad flag accepted")
	}
}
