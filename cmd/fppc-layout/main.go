// fppc-layout prints the pin diagram of a chip in the style of the
// paper's Figure 5: one pin number per electrode, dots for interference
// regions.
//
// Usage:
//
//	fppc-layout                     # the Figure 5 chip (12x15)
//	fppc-layout -height 21          # the Table 1 workhorse
//	fppc-layout -da -w 15 -h 19     # the direct-addressing baseline
//	fppc-layout -check -wiring      # design rules + PCB cost estimate
//	fppc-layout -export chip.json   # wiring description for tools
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fppc"
	"fppc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-layout: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-layout", flag.ContinueOnError)
	height := fs.Int("height", 15, "FPPC chip height (width is fixed at 12)")
	da := fs.Bool("da", false, "print a direct-addressing chip instead")
	w := fs.Int("w", 15, "DA chip width")
	h := fs.Int("h", 19, "DA chip height")
	check := fs.Bool("check", false, "run the fluidic design-rule checker")
	wiring := fs.Bool("wiring", false, "print the PCB wiring-cost estimate")
	export := fs.String("export", "", "write the chip wiring description as JSON to this file")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}
	logger.Debug("rendering layout", "da", *da, "height", *height)

	var chip *fppc.Chip
	if *da {
		chip, err = fppc.NewDAChip(*w, *h)
	} else {
		chip, err = fppc.NewFPPCChip(*height)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(out, chip.Render())
	fmt.Fprintf(out, "modules:")
	for _, m := range chip.Modules() {
		fmt.Fprintf(out, " %v[%d]@%v", m.Kind, m.Index, m.Rect)
	}
	fmt.Fprintln(out)
	if *check {
		if err := fppc.CheckDesignRules(chip); err != nil {
			return fmt.Errorf("design rules VIOLATED: %w", err)
		}
		fmt.Fprintln(out, "design rules: OK (3-phase buses, intersections, isolation, module I/O, reachability)")
	}
	if *wiring {
		fmt.Fprintln(out, "wiring:", fppc.AnalyzeWiring(chip))
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fppc.ExportChipJSON(f, chip); err != nil {
			return err
		}
		fmt.Fprintf(out, "wiring description written to %s\n", *export)
	}
	return nil
}
