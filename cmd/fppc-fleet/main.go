// fppc-fleet runs the canned chip-fleet degradation scenario and prints
// its timeline: a fleet of mixed-architecture chips takes a batch of
// benchmark assays, one chip wears out mid-run, and the reconciler
// migrates the stranded jobs — fault-aware recompile via the recovery
// planner, oracle-verified on the destination. Time is virtual
// (schedule steps) and every random choice flows from -seed, so the
// same flags always print the same timeline.
//
// Usage:
//
//	fppc-fleet                          # 5 chips, 20 jobs, seed 1
//	fppc-fleet -chips 6 -jobs 40 -seed 7
//	fppc-fleet -o fleet.json            # write the full result as JSON
//
// The exit status is non-zero if any job is lost (ends failed instead
// of completing or migrating) — CI runs this as the fleet smoke test.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fppc/internal/cli"
	"fppc/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-fleet: ")
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-fleet", flag.ContinueOnError)
	chips := fs.Int("chips", 5, "fleet size (minimum 2; architectures rotate, one chip has a manufacturing defect)")
	jobs := fs.Int("jobs", 20, "benchmark assays to submit")
	seed := fs.Int64("seed", 1, "seed for the mid-run wear injection")
	cells := fs.Int("cells", 2, "electrodes the wear injection wears out")
	ratedLife := fs.Int64("rated-life", 0, "per-electrode actuation budget (0 = fleet default)")
	output := fs.String("o", "", "write the full scenario result as JSON to this file")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}
	logger.Debug("running scenario", "chips", *chips, "jobs", *jobs, "seed", *seed)

	res, err := fleet.RunScenario(ctx, fleet.ScenarioConfig{
		Chips:        *chips,
		Jobs:         *jobs,
		Seed:         *seed,
		DegradeCells: *cells,
		RatedLife:    *ratedLife,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "fleet: %d chips, %d jobs, seed %d\n", *chips, *jobs, *seed)
	for _, c := range res.Chips {
		fmt.Fprintf(out, "  %-8s %-4s %2dx%-2d %-8s faults=%d wear=%.4f\n",
			c.ID, c.Target, c.W, c.H, c.Health, c.FaultCount, c.MaxWear)
	}
	fmt.Fprintf(out, "timeline (virtual steps; wear injected on %s at step %d):\n",
		res.DegradedChip, res.DegradedAtStep)
	for _, e := range res.Events {
		fmt.Fprintf(out, "  [%4d] %-9s %s\n", e.Step, e.Kind, eventLine(e))
	}
	fmt.Fprintf(out, "outcome: %d placed, %d migrated, %d completed, %d failed (final step %d)\n",
		res.Placed, res.Migrated, res.Completed, res.Failed, res.FinalStep)

	if *output != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*output, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "result written to %s\n", *output)
	}
	if len(res.Lost) > 0 {
		return fmt.Errorf("%d jobs lost: %v", len(res.Lost), res.Lost)
	}
	fmt.Fprintln(out, "no jobs lost")
	return nil
}

// eventLine renders one event's specifics for the timeline.
func eventLine(e fleet.Event) string {
	switch e.Kind {
	case fleet.EventMigrated:
		return fmt.Sprintf("%s %s -> %s: %s", e.Job, e.From, e.To, e.Detail)
	case fleet.EventDegraded:
		return fmt.Sprintf("%s now %s", e.Chip, e.Detail)
	case fleet.EventSubmitted:
		return fmt.Sprintf("%s (%s)", e.Job, e.Detail)
	default:
		s := e.Job
		if e.Chip != "" {
			s += " on " + e.Chip
		}
		if e.Detail != "" {
			s += ": " + e.Detail
		}
		return s
	}
}
