package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fppc/internal/fleet"
)

// TestScenarioCLI runs the pinned-seed scenario end to end: the
// timeline must show a wear-triggered migration, no job may be lost,
// and the JSON artifact must round-trip.
func TestScenarioCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the benchmark suite across a fleet")
	}
	outFile := filepath.Join(t.TempDir(), "fleet.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-chips", "4", "-jobs", "12", "-seed", "1", "-o", outFile}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	text := buf.String()
	for _, want := range []string{"degraded", "migrated", "recovery plan", "oracle verified", "no jobs lost"} {
		if !strings.Contains(text, want) {
			t.Errorf("timeline missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var res fleet.ScenarioResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if len(res.Lost) != 0 || res.Failed != 0 {
		t.Errorf("lost jobs in artifact: %+v", res)
	}
	if res.Migrated < 1 {
		t.Errorf("no migrations recorded: %+v", res)
	}
	if len(res.Jobs) != 12 || len(res.Chips) != 4 {
		t.Errorf("artifact shape: %d jobs, %d chips", len(res.Jobs), len(res.Chips))
	}
}

// TestScenarioCLIDeterministic checks the same flags print the same
// timeline, byte for byte.
func TestScenarioCLIDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scenario twice")
	}
	render := func() string {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-jobs", "6", "-seed", "3"}, &buf); err != nil {
			t.Fatalf("run: %v\n%s", err, buf.String())
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("timeline not deterministic:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-chips", "1"}, &bytes.Buffer{}); err == nil {
		t.Error("fleet of one accepted")
	}
	if err := run(context.Background(), []string{"-no-such-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "fppc ") {
		t.Errorf("version output = %q", buf.String())
	}
}
