package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.0, 100 * time.Millisecond},
	} {
		if got := percentile(durs, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile([]time.Duration{7 * time.Millisecond}, 0.5); got != 7*time.Millisecond {
		t.Errorf("singleton percentile = %v", got)
	}
	if got := percentile(durs, 0.0); got != 1*time.Millisecond {
		t.Errorf("zero-quantile percentile = %v", got)
	}
}

func TestBuildMixes(t *testing.T) {
	mixes, err := buildMixes("cache_hot, verify")
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) != 2 || mixes[0].name != "cache_hot" || mixes[1].name != "verify" {
		t.Fatalf("unexpected mixes %+v", mixes)
	}
	if _, err := buildMixes("bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := buildMixes(""); err == nil {
		t.Error("empty mix list accepted")
	}
}

func TestFaultVariantSpecsDiffer(t *testing.T) {
	mixes, err := buildMixes("fault_variants")
	if err != nil {
		t.Fatal(err)
	}
	a, b := mixes[0].gen(0), mixes[0].gen(1)
	if a.Faults == "" || a.Faults == b.Faults {
		t.Errorf("fault variants should rotate specs: %q vs %q", a.Faults, b.Faults)
	}
}

func TestEndToEndInProcess(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{"-n", "8", "-rate", "500", "-mix", "cache_hot,mixed_targets", "-o", outFile}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if len(art.Mixes) != 2 {
		t.Fatalf("got %d mixes, want 2", len(art.Mixes))
	}
	for _, m := range art.Mixes {
		if m.Requests != 8 || m.Errors != 0 {
			t.Errorf("mix %s: requests=%d errors=%d", m.Name, m.Requests, m.Errors)
		}
		if m.P50MS <= 0 || m.P99MS < m.P50MS {
			t.Errorf("mix %s: implausible percentiles p50=%v p99=%v", m.Name, m.P50MS, m.P99MS)
		}
		if m.Throughput <= 0 {
			t.Errorf("mix %s: throughput %v", m.Name, m.Throughput)
		}
	}
	if !strings.Contains(buf.String(), "cache_hot") {
		t.Errorf("summary table missing mix name:\n%s", buf.String())
	}
	// In-process runs carry the runtime/metrics summary: hundreds of
	// compiles cannot allocate nothing.
	if art.Runtime == nil {
		t.Fatal("in-process artifact has no runtime summary")
	}
	if art.Runtime.HeapAllocBytes == 0 || art.Runtime.HeapAllocObjects == 0 {
		t.Errorf("runtime summary reports no allocation: %+v", art.Runtime)
	}
	if art.Runtime.HeapLiveBytes == 0 {
		t.Errorf("runtime summary reports empty live heap: %+v", art.Runtime)
	}
	if !strings.Contains(buf.String(), "runtime:") {
		t.Errorf("summary output missing runtime line:\n%s", buf.String())
	}
}

// TestFleetMixInProcess runs the fleet mix against an in-process server
// and checks the artifact's fleet summary: every job lands somewhere,
// the mid-run wear injection forces at least one migration, and nothing
// is lost.
func TestFleetMixInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the fleet control plane end to end")
	}
	outFile := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{"-n", "12", "-rate", "500", "-mix", "fleet", "-o", outFile}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if len(art.Mixes) != 1 || art.Mixes[0].Name != "fleet" {
		t.Fatalf("mixes: %+v", art.Mixes)
	}
	f := art.Fleet
	if f == nil {
		t.Fatal("artifact has no fleet summary")
	}
	if f.Chips != 5 || f.Jobs != 12 {
		t.Errorf("fleet summary: %+v", f)
	}
	if f.Failed != 0 {
		t.Errorf("%d jobs lost: %+v", f.Failed, f)
	}
	if f.Migrated < 1 {
		t.Errorf("wear injection forced no migrations: %+v", f)
	}
	if f.DegradedChip == "" {
		t.Error("no degraded chip recorded")
	}
	hosted := 0
	for _, c := range f.PerChip {
		hosted += c.Hosted
	}
	if hosted != f.Jobs {
		t.Errorf("hosted %d != jobs %d (virtual clock never ticks here)", hosted, f.Jobs)
	}
	if !strings.Contains(buf.String(), "migrations") {
		t.Errorf("summary output missing fleet line:\n%s", buf.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "fppc ") {
		t.Errorf("version output = %q", buf.String())
	}
}
