package main

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// runtimeSummary is the artifact's account of GC and heap behaviour
// over the whole load run, from runtime/metrics deltas between start
// and finish. It is only emitted for in-process runs, where the
// generator and the server share one runtime — against a live -addr
// the numbers would describe the client, not the service.
type runtimeSummary struct {
	GCCycles         uint64  `json:"gc_cycles"`
	GCPauses         uint64  `json:"gc_pauses"`
	GCPauseTotalMS   float64 `json:"gc_pause_total_ms"`
	GCPauseMaxMS     float64 `json:"gc_pause_max_ms"`
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	HeapAllocObjects uint64  `json:"heap_alloc_objects"`
	// HeapLiveBytes is the live heap at the end of the run (a level,
	// not a delta).
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
}

// runtimeSnapshot holds the cumulative runtime/metrics values a
// summary is differenced from.
type runtimeSnapshot struct {
	cycles, allocBytes, allocObjects, liveBytes uint64
	// pauses copies the /gc/pauses:seconds histogram (metrics.Read may
	// reuse the returned histogram on later reads).
	pauseCounts  []uint64
	pauseBuckets []float64
}

var snapshotNames = []string{
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
}

func takeRuntimeSnapshot() runtimeSnapshot {
	samples := make([]metrics.Sample, len(snapshotNames))
	for i, name := range snapshotNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var snap runtimeSnapshot
	for _, sm := range samples {
		switch sm.Name {
		case "/gc/cycles/total:gc-cycles":
			snap.cycles = sm.Value.Uint64()
		case "/gc/heap/allocs:bytes":
			snap.allocBytes = sm.Value.Uint64()
		case "/gc/heap/allocs:objects":
			snap.allocObjects = sm.Value.Uint64()
		case "/memory/classes/heap/objects:bytes":
			snap.liveBytes = sm.Value.Uint64()
		case "/gc/pauses:seconds":
			if h := sm.Value.Float64Histogram(); h != nil {
				snap.pauseCounts = append([]uint64(nil), h.Counts...)
				snap.pauseBuckets = append([]float64(nil), h.Buckets...)
			}
		}
	}
	return snap
}

// diffRuntime reduces two snapshots to the artifact summary. The pause
// total is a bucket-midpoint estimate and the max is the upper bound
// of the highest bucket that gained events (runtime/metrics exposes
// distributions, not exact totals).
func diffRuntime(start, end runtimeSnapshot) *runtimeSummary {
	sum := &runtimeSummary{
		GCCycles:         end.cycles - start.cycles,
		HeapAllocBytes:   end.allocBytes - start.allocBytes,
		HeapAllocObjects: end.allocObjects - start.allocObjects,
		HeapLiveBytes:    end.liveBytes,
	}
	for i, n := range end.pauseCounts {
		if i < len(start.pauseCounts) {
			n -= start.pauseCounts[i]
		}
		if n == 0 {
			continue
		}
		sum.GCPauses += n
		lo, hi := end.pauseBuckets[i], end.pauseBuckets[i+1]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		sum.GCPauseTotalMS += float64(n) * (lo + hi) / 2 * 1e3
		if ms := hi * 1e3; ms > sum.GCPauseMaxMS {
			sum.GCPauseMaxMS = ms
		}
	}
	return sum
}

func printRuntimeSummary(out io.Writer, r *runtimeSummary) {
	fmt.Fprintf(out, "runtime: %d GC cycles, %d pauses totalling ~%.2f ms (max ~%.2f ms); %.1f MB allocated (%d objects), %.1f MB live\n",
		r.GCCycles, r.GCPauses, r.GCPauseTotalMS, r.GCPauseMaxMS,
		float64(r.HeapAllocBytes)/(1<<20), r.HeapAllocObjects,
		float64(r.HeapLiveBytes)/(1<<20))
}
