// fppc-load drives a compilation service with realistic traffic and
// reports latency percentiles and throughput per mix. It is an
// open-loop generator: requests launch on a fixed clock regardless of
// how fast earlier ones complete, so queueing delay shows up in the
// measured latency instead of being hidden by back-pressure (the
// coordinated-omission trap of closed-loop benchmarks).
//
// Usage:
//
//	fppc-load                               # in-process server, all mixes
//	fppc-load -addr http://127.0.0.1:8093   # live server
//	fppc-load -rate 200 -n 500 -mix cache_hot,fault_variants
//	fppc-load -o BENCH_LOAD.json            # write the JSON artifact
//
// Mixes:
//
//	cache_hot      — the same PCR request over and over: cache hit path
//	fault_variants — PCR under rotating hardware fault specs: compile path
//	verify         — rotating assays with the oracle enabled
//	mixed_targets  — rotating through every registered target
//	                 (fppc, da, enhanced-fppc)
//	fleet          — submissions to the chip-fleet control plane, with a
//	                 mid-run wear injection forcing migrations; the
//	                 artifact gains a per-chip placement/migration summary
//
// In-process runs also record a runtime summary in the artifact: GC
// cycle and pause totals plus heap allocation over the whole run, from
// runtime/metrics.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"fppc"
	"fppc/internal/arch"
	"fppc/internal/cli"
	"fppc/internal/fleet"
	"fppc/internal/obs"
	"fppc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-load: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// mixResult is one row of the JSON artifact.
type mixResult struct {
	Name       string  `json:"name"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	CacheHits  int     `json:"cache_hits"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	Throughput float64 `json:"throughput_rps"`
	ElapsedS   float64 `json:"elapsed_s"`
}

// artifact is the loadbench JSON schema (BENCH_LOAD.json; diffable
// with scripts/benchdiff).
type artifact struct {
	GeneratedBy string      `json:"generated_by"`
	Addr        string      `json:"addr"`
	RateHz      float64     `json:"rate_hz"`
	PerMix      int         `json:"requests_per_mix"`
	Mixes       []mixResult `json:"mixes"`
	// Fleet is present when the fleet mix ran: the control plane's view
	// of where the submitted jobs landed and what the wear injection
	// forced to move.
	Fleet *fleetSummary `json:"fleet,omitempty"`
	// Runtime is present for in-process runs: GC pause and heap-alloc
	// totals over the whole run, from runtime/metrics.
	Runtime *runtimeSummary `json:"runtime,omitempty"`
}

// fleetChipStat is one chip's share of the fleet-mix traffic.
type fleetChipStat struct {
	Chip        string  `json:"chip"`
	Target      string  `json:"target"`
	Hosted      int     `json:"hosted"` // jobs on this chip when the mix settled
	MigratedIn  int     `json:"migrated_in"`
	MigratedOut int     `json:"migrated_out"`
	Faults      string  `json:"faults,omitempty"`
	MaxWear     float64 `json:"max_wear"`
	// Throughput is hosted jobs per wall-clock second of the mix run.
	Throughput float64 `json:"throughput_jobs_per_s"`
}

// fleetSummary aggregates the fleet mix outcome for the artifact.
type fleetSummary struct {
	Chips        int             `json:"chips"`
	Jobs         int             `json:"jobs"`
	Placed       int             `json:"placed"`
	Migrated     int             `json:"migrated"`
	Failed       int             `json:"failed"`
	Completed    int             `json:"completed"`
	DegradedChip string          `json:"degraded_chip,omitempty"`
	PerChip      []fleetChipStat `json:"per_chip"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-load", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of a live fppc-serve (empty = spin an in-process server)")
	rate := fs.Float64("rate", 100, "request launch rate per second (open loop)")
	n := fs.Int("n", 100, "requests per mix")
	mixNames := fs.String("mix", "cache_hot,fault_variants,verify,mixed_targets,fleet", "comma-separated mixes to run")
	fleetChips := fs.Int("fleet-chips", 5, "in-process fleet size for the fleet mix")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	output := fs.String("o", "", "write the JSON artifact to this file")
	workers := fs.Int("workers", 0, "in-process server worker pool (0 = GOMAXPROCS)")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}
	if *rate <= 0 || *n <= 0 {
		return fmt.Errorf("-rate and -n must be positive")
	}

	// The fleet mix talks to different endpoints and yields a different
	// summary, so it is split off from the compile mixes here.
	wantFleet := false
	var compileNames []string
	for _, name := range strings.Split(*mixNames, ",") {
		if strings.TrimSpace(name) == "fleet" {
			wantFleet = true
			continue
		}
		compileNames = append(compileNames, name)
	}

	base := strings.TrimSuffix(*addr, "/")
	target := base
	if base == "" {
		cfg := service.Config{Workers: *workers}
		if wantFleet {
			specs, err := fleet.ScenarioSpecs(*fleetChips)
			if err != nil {
				return err
			}
			ob := obs.NewMetricsOnly()
			fl, err := fleet.New(fleet.Config{Chips: specs, Obs: ob, MaxEvents: 8 * *n})
			if err != nil {
				return err
			}
			cfg.Obs = ob
			cfg.Fleet = fl
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go fl.Run(ctx, 50*time.Millisecond)
		}
		ts := httptest.NewServer(service.New(cfg))
		defer ts.Close()
		base = ts.URL
		target = "in-process"
		logger.Debug("started in-process server", "url", ts.URL)
	}

	var mixes []mix
	if len(compileNames) > 0 {
		var err error
		mixes, err = buildMixes(strings.Join(compileNames, ","))
		if err != nil {
			return err
		}
	} else if !wantFleet {
		return fmt.Errorf("no mixes selected")
	}
	client := &http.Client{Timeout: *timeout}
	art := artifact{GeneratedBy: "fppc-load", Addr: target, RateHz: *rate, PerMix: *n}
	var runtimeStart runtimeSnapshot
	if target == "in-process" {
		runtimeStart = takeRuntimeSnapshot()
	}
	fmt.Fprintf(out, "%-16s %8s %7s %6s %9s %9s %9s %11s\n",
		"mix", "requests", "errors", "hits", "p50(ms)", "p95(ms)", "p99(ms)", "rps")
	for _, m := range mixes {
		logger.Debug("running mix", "mix", m.name, "n", *n, "rate", *rate)
		res := runMix(client, base, m, *n, *rate)
		art.Mixes = append(art.Mixes, res)
		fmt.Fprintf(out, "%-16s %8d %7d %6d %9.2f %9.2f %9.2f %11.1f\n",
			res.Name, res.Requests, res.Errors, res.CacheHits,
			res.P50MS, res.P95MS, res.P99MS, res.Throughput)
	}
	if wantFleet {
		logger.Debug("running mix", "mix", "fleet", "n", *n, "rate", *rate)
		res, fsum, err := runFleetMix(client, base, *n, *rate)
		if err != nil {
			return err
		}
		art.Mixes = append(art.Mixes, res)
		art.Fleet = fsum
		fmt.Fprintf(out, "%-16s %8d %7d %6d %9.2f %9.2f %9.2f %11.1f\n",
			res.Name, res.Requests, res.Errors, res.CacheHits,
			res.P50MS, res.P95MS, res.P99MS, res.Throughput)
		fmt.Fprintf(out, "fleet: %d jobs over %d chips, %d placements, %d migrations, %d failed (degraded %s)\n",
			fsum.Jobs, fsum.Chips, fsum.Placed, fsum.Migrated, fsum.Failed, fsum.DegradedChip)
		for _, c := range fsum.PerChip {
			fmt.Fprintf(out, "  %-8s %-4s hosts %3d (in %d, out %d)  %6.1f jobs/s  wear %.4f\n",
				c.Chip, c.Target, c.Hosted, c.MigratedIn, c.MigratedOut, c.Throughput, c.MaxWear)
		}
	}
	if target == "in-process" {
		art.Runtime = diffRuntime(runtimeStart, takeRuntimeSnapshot())
		printRuntimeSummary(out, art.Runtime)
	}
	if *output != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*output, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "artifact written to %s\n", *output)
	}
	for _, r := range art.Mixes {
		if r.Errors > 0 {
			return fmt.Errorf("mix %s: %d of %d requests failed", r.Name, r.Errors, r.Requests)
		}
	}
	return nil
}

// mix names a traffic pattern and generates its i-th request body.
type mix struct {
	name string
	gen  func(i int) service.CompileRequest
}

// buildMixes resolves the -mix list into request generators.
func buildMixes(names string) ([]mix, error) {
	tm := fppc.DefaultTiming()
	dag := func(a *fppc.Assay) json.RawMessage {
		raw, err := json.Marshal(a)
		if err != nil {
			panic(err) // built-in assays always marshal
		}
		return raw
	}
	pcr := dag(fppc.PCR(tm))
	rotation := []json.RawMessage{pcr, dag(fppc.InVitroN(1, tm)), dag(fppc.InVitroN(2, tm))}
	var targetNames []string
	for _, spec := range fppc.Targets() {
		targetNames = append(targetNames, spec.Name)
	}

	// Valid single-fault specs: each mix-module hold cell of the
	// 12x21 workhorse chip is synthesizable-around, so rotating
	// through them yields distinct cache keys that all compile.
	chip, err := arch.NewFPPC(21)
	if err != nil {
		return nil, err
	}
	var specs []string
	for _, m := range chip.MixModules {
		specs = append(specs, fmt.Sprintf("open@%d,%d", m.Hold.X, m.Hold.Y))
	}

	all := map[string]mix{
		"cache_hot": {name: "cache_hot", gen: func(i int) service.CompileRequest {
			return service.CompileRequest{DAG: pcr}
		}},
		"fault_variants": {name: "fault_variants", gen: func(i int) service.CompileRequest {
			return service.CompileRequest{DAG: pcr, Faults: specs[i%len(specs)]}
		}},
		"verify": {name: "verify", gen: func(i int) service.CompileRequest {
			return service.CompileRequest{DAG: rotation[i%len(rotation)], Verify: true}
		}},
		"mixed_targets": {name: "mixed_targets", gen: func(i int) service.CompileRequest {
			req := service.CompileRequest{DAG: rotation[i%len(rotation)]}
			req.Target = targetNames[i%len(targetNames)]
			return req
		}},
	}
	var out []mix
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := all[name]
		if !ok {
			return nil, fmt.Errorf("unknown mix %q (cache_hot, fault_variants, verify, mixed_targets)", name)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no mixes selected")
	}
	return out, nil
}

// runMix fires n requests at the fixed open-loop rate and aggregates
// latencies once every in-flight request has returned.
func runMix(client *http.Client, base string, m mix, n int, rate float64) mixResult {
	type sample struct {
		dur    time.Duration
		cached bool
		err    bool
	}
	samples := make([]sample, n)
	interval := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < n; i++ {
		if i > 0 {
			<-tick.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(m.gen(i))
			t0 := time.Now()
			resp, err := client.Post(base+"/compile", "application/json", bytes.NewReader(body))
			samples[i].dur = time.Since(t0)
			if err != nil {
				samples[i].err = true
				return
			}
			defer resp.Body.Close()
			var parsed struct {
				Cached bool `json:"cached"`
			}
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&parsed) != nil {
				samples[i].err = true
				return
			}
			samples[i].cached = parsed.Cached
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := mixResult{Name: m.name, Requests: n, ElapsedS: elapsed.Seconds()}
	durs := make([]time.Duration, 0, n)
	for _, s := range samples {
		if s.err {
			res.Errors++
			continue
		}
		if s.cached {
			res.CacheHits++
		}
		durs = append(durs, s.dur)
	}
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		res.P50MS = ms(percentile(durs, 0.50))
		res.P95MS = ms(percentile(durs, 0.95))
		res.P99MS = ms(percentile(durs, 0.99))
		res.MaxMS = ms(durs[len(durs)-1])
	}
	if elapsed > 0 {
		res.Throughput = float64(n-res.Errors) / elapsed.Seconds()
	}
	return res
}

// runFleetMix drives the chip-fleet control plane: n job submissions at
// the open-loop rate (rotating the benchmark assays), one seeded wear
// injection on the busiest chip halfway through, then a wait for the
// reconciler to settle every job. Latency percentiles cover the
// submission round trip (202 Accepted); the fleet summary reports where
// jobs landed and what the degradation forced to move.
func runFleetMix(client *http.Client, base string, n int, rate float64) (mixResult, *fleetSummary, error) {
	tm := fppc.DefaultTiming()
	rotation := make([]json.RawMessage, 0, 3)
	for _, a := range []*fppc.Assay{fppc.PCR(tm), fppc.InVitroN(1, tm), fppc.InVitroN(2, tm)} {
		raw, err := json.Marshal(a)
		if err != nil {
			return mixResult{}, nil, err
		}
		rotation = append(rotation, raw)
	}

	type sample struct {
		dur time.Duration
		err bool
	}
	samples := make([]sample, n)
	interval := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	degraded := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			<-tick.C
		}
		if i == n/2 {
			// Halfway: wear out the busiest chip so the reconciler has to
			// migrate its jobs while submissions keep arriving.
			chip, err := degradeBusiest(client, base)
			if err != nil {
				return mixResult{}, nil, fmt.Errorf("wear injection: %w", err)
			}
			degraded = chip
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(service.FleetJobRequest{DAG: rotation[i%len(rotation)]})
			t0 := time.Now()
			resp, err := client.Post(base+"/fleet/jobs", "application/json", bytes.NewReader(body))
			samples[i].dur = time.Since(t0)
			if err != nil {
				samples[i].err = true
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				samples[i].err = true
			}
		}(i)
	}
	wg.Wait()

	// Let the reconciler settle: every job out of pending (placement is
	// asynchronous; nothing here advances the virtual clock, so settled
	// jobs sit in placed or failed).
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		jobs, err := fetchJobs(client, base)
		if err != nil {
			return mixResult{}, nil, err
		}
		pending := 0
		for _, j := range jobs {
			if j.State == fleet.JobPending {
				pending++
			}
		}
		if pending == 0 && len(jobs) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(start)

	res := mixResult{Name: "fleet", Requests: n, ElapsedS: elapsed.Seconds()}
	durs := make([]time.Duration, 0, n)
	for _, s := range samples {
		if s.err {
			res.Errors++
			continue
		}
		durs = append(durs, s.dur)
	}
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		res.P50MS = ms(percentile(durs, 0.50))
		res.P95MS = ms(percentile(durs, 0.95))
		res.P99MS = ms(percentile(durs, 0.99))
		res.MaxMS = ms(durs[len(durs)-1])
	}
	if elapsed > 0 {
		res.Throughput = float64(n-res.Errors) / elapsed.Seconds()
	}

	jobs, err := fetchJobs(client, base)
	if err != nil {
		return mixResult{}, nil, err
	}
	sum, err := fleetSummarize(client, base, elapsed)
	if err != nil {
		return mixResult{}, nil, err
	}
	sum.Jobs = len(jobs)
	sum.DegradedChip = degraded
	return res, sum, nil
}

// degradeBusiest injects seeded wear into the chip hosting the most
// jobs and returns its id.
func degradeBusiest(client *http.Client, base string) (string, error) {
	resp, err := client.Get(base + "/fleet/chips")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var chips []fleet.ChipStatus
	if err := json.NewDecoder(resp.Body).Decode(&chips); err != nil {
		return "", err
	}
	victim, best := "", -1
	for _, c := range chips {
		if n := len(c.Jobs); n > best {
			best, victim = n, c.ID
		}
	}
	if victim == "" {
		return "", fmt.Errorf("no chips in the fleet")
	}
	body, _ := json.Marshal(service.FleetDegradeRequest{Chip: victim, Seed: 7})
	dr, err := client.Post(base+"/debug/fleet/degrade", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		return "", fmt.Errorf("degrade %s: HTTP %d", victim, dr.StatusCode)
	}
	return victim, nil
}

// fetchJobs lists the fleet's jobs.
func fetchJobs(client *http.Client, base string) ([]fleet.JobStatus, error) {
	resp, err := client.Get(base + "/fleet/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /fleet/jobs: HTTP %d (does the server run with -fleet?)", resp.StatusCode)
	}
	var jobs []fleet.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// fleetSummarize reads /debug/fleet and folds the event log into
// per-chip placement and migration counts.
func fleetSummarize(client *http.Client, base string, elapsed time.Duration) (*fleetSummary, error) {
	resp, err := client.Get(base + "/debug/fleet")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var dbg service.FleetDebugResponse
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		return nil, err
	}
	sum := &fleetSummary{
		Chips:     len(dbg.Chips),
		Placed:    dbg.Placed,
		Migrated:  dbg.Migrated,
		Failed:    dbg.Failed,
		Completed: dbg.Completed,
	}
	in := map[string]int{}
	out := map[string]int{}
	for _, e := range dbg.Events {
		if e.Kind == fleet.EventMigrated {
			in[e.To]++
			out[e.From]++
		}
	}
	for _, c := range dbg.Chips {
		stat := fleetChipStat{
			Chip:        c.ID,
			Target:      c.Target,
			Hosted:      len(c.Jobs),
			MigratedIn:  in[c.ID],
			MigratedOut: out[c.ID],
			Faults:      c.Faults,
			MaxWear:     c.MaxWear,
		}
		if elapsed > 0 {
			stat.Throughput = float64(stat.Hosted) / elapsed.Seconds()
		}
		sum.PerChip = append(sum.PerChip, stat)
	}
	return sum, nil
}

// percentile returns the q-quantile of the sorted durations using the
// nearest-rank method.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
