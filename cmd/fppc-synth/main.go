// fppc-synth compiles an assay onto a DMFB and reports the synthesis
// metrics. Assays come from the built-in benchmark generators, a JSON DAG
// file, or an assay-description-language (.asl) file.
//
// Usage:
//
//	fppc-synth -assay pcr
//	fppc-synth -assay invitro3 -target da
//	fppc-synth -assay pcr -target enhanced-fppc
//	fppc-synth -assay protein4 -grow -gantt
//	fppc-synth -file myassay.asl -program out.pins -frames out.bin
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"fppc"
	"fppc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-synth: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-synth", flag.ContinueOnError)
	name := fs.String("assay", "pcr", "built-in assay: pcr, invitroN (N=1..5), proteinN (N=1..7)")
	file := fs.String("file", "", "JSON or .asl assay file (overrides -assay)")
	target := fs.String("target", "", "architecture (a registered target: fppc, da, enhanced-fppc; default fppc)")
	height := fs.Int("height", 0, "FPPC chip height (0 = 12x21 default)")
	grow := fs.Bool("grow", false, "grow the array until the assay fits")
	program := fs.String("program", "", "write the compiled pin program to this file")
	frames := fs.String("frames", "", "write the dry-controller frame stream to this file")
	gantt := fs.Bool("gantt", false, "print a module-occupancy Gantt chart of the schedule")
	dot := fs.Bool("dot", false, "print the assay DAG in Graphviz dot format and exit")
	dump := fs.String("dump-assay", "", "write the assay DAG as JSON to this file")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	metricsOut := fs.String("metrics", "", "write pipeline metrics in Prometheus text format")
	timeout := fs.Duration("timeout", 0, "abort compilation after this long (0 = no limit)")
	workers := fs.Int("workers", 0, "worker goroutines for parallel schedule/route phases (0 or 1 = sequential; output is byte-identical either way)")
	verbose := fs.Bool("v", false, "print the per-stage span summary after compiling")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}

	assay, err := loadAssay(*file, *name)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(out, assay.DOT())
		return nil
	}
	if *dump != "" {
		data, err := json.MarshalIndent(assay, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dump, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "assay written to %s\n", *dump)
		return nil
	}
	cfg := fppc.Config{FPPCHeight: *height, AutoGrow: *grow, Workers: *workers}
	var ob *fppc.Observer
	if *traceOut != "" || *metricsOut != "" || *verbose {
		ob = fppc.NewObserver()
		cfg.Obs = ob
	}
	spec, err := fppc.ParseTarget(*target)
	if err != nil {
		return err
	}
	cfg.Target = spec.ID
	if *program != "" || *frames != "" {
		if !spec.Capabilities.PinProgram {
			return fmt.Errorf("pin programs are only emitted for pin-program targets (fppc, enhanced-fppc), not %s", spec.Name)
		}
		cfg.Router = fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 12}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	logger.Debug("compiling", "assay", assay.Name, "target", spec.Name, "grow", *grow)
	start := time.Now()
	res, err := fppc.CompileContext(ctx, assay, cfg)
	if err != nil {
		return err
	}
	logger.Debug("compiled", "assay", assay.Name, "dur", time.Since(start))
	fmt.Fprintln(out, res.Summary())
	st, err := assay.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "assay: %d operations, %d edges, critical path %d s, peak width %d\n",
		st.Nodes, st.Edges, st.CriticalPath, st.MaxConcurrent)
	fmt.Fprintf(out, "schedule: makespan %d steps, %d droplet moves, %d storage relocations, peak stored %d\n",
		res.Schedule.Makespan, len(res.Schedule.Moves), res.Schedule.StorageMoves, res.Schedule.PeakStored)
	fmt.Fprintf(out, "routing: %d sub-problems, %d cycles total, %d deadlock-buffer relocations\n",
		len(res.Routing.Boundaries), res.Routing.TotalCycles, res.Routing.BufferReloc)
	if u := res.Schedule.Utilization(); len(u) > 0 {
		fmt.Fprintf(out, "module utilization:")
		for _, kind := range []string{"mix", "ssd", "work"} {
			if v, ok := u[kind]; ok {
				fmt.Fprintf(out, " %s %.0f%%", kind, 100*v)
			}
		}
		fmt.Fprintln(out)
	}
	if *gantt {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.Schedule.Gantt())
	}
	if *verbose {
		fmt.Fprintln(out)
		printSpans(out, ob)
	}
	if *traceOut != "" {
		if err := ob.WriteChromeTraceFile(*traceOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := ob.WritePrometheusFile(*metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics written to %s\n", *metricsOut)
	}

	if *program != "" {
		f, err := os.Create(*program)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := res.Routing.Program.WriteTo(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "pin program: %d cycles written to %s\n", res.Routing.Program.Len(), *program)
		fmt.Fprintln(out, "pin load:", fppc.ComputePinStats(res.Routing.Program))
	}
	if *frames != "" {
		f, err := os.Create(*frames)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fppc.EncodeFrames(f, res.Routing.Program, res.Chip.PinCount()); err != nil {
			return err
		}
		fmt.Fprintf(out, "controller frames written to %s (%d B/s at 100 Hz)\n",
			*frames, fppc.LinkBandwidthBps(res.Chip.PinCount(), 100))
	}
	return nil
}

// printSpans renders the recorded spans as an aligned, indented summary
// table. Singleton spans keep their args; repeated spans (the router's
// per-boundary spans) collapse into one line with a count.
func printSpans(out io.Writer, ob *fppc.Observer) {
	type group struct {
		name  string
		depth int
		n     int
		total time.Duration
		args  string
	}
	var groups []*group
	idx := map[string]*group{}
	for _, r := range ob.Tracer().Records() {
		key := fmt.Sprintf("%d/%s", r.Depth, r.Name)
		g := idx[key]
		if g == nil {
			g = &group{name: r.Name, depth: r.Depth, args: r.FormatArgs()}
			idx[key] = g
			groups = append(groups, g)
		}
		g.n++
		g.total += r.Dur
	}
	width := 0
	for _, g := range groups {
		if w := 2*g.depth + len(g.name); w > width {
			width = w
		}
	}
	fmt.Fprintln(out, "stage timings:")
	for _, g := range groups {
		label := strings.Repeat("  ", g.depth) + g.name
		suffix := g.args
		if g.n > 1 {
			suffix = fmt.Sprintf("x%d", g.n)
		}
		fmt.Fprintf(out, "  %-*s %12s  %s\n", width, label, g.total.Round(time.Microsecond), suffix)
	}
}

// loadAssay resolves a JSON or ASL file, or a built-in benchmark name.
func loadAssay(file, name string) (*fppc.Assay, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(file, ".asl") {
			return fppc.ParseASL(string(data))
		}
		var a fppc.Assay
		if err := json.Unmarshal(data, &a); err != nil {
			return nil, err
		}
		if err := a.Validate(); err != nil {
			return nil, err
		}
		return &a, nil
	}
	tm := fppc.DefaultTiming()
	name = strings.ToLower(name)
	switch {
	case name == "pcr":
		return fppc.PCR(tm), nil
	case strings.HasPrefix(name, "invitro"):
		n, err := strconv.Atoi(name[len("invitro"):])
		if err != nil || n < 1 || n > 5 {
			return nil, fmt.Errorf("bad in-vitro index in %q (want invitro1..invitro5)", name)
		}
		return fppc.InVitroN(n, tm), nil
	case strings.HasPrefix(name, "protein"):
		n, err := strconv.Atoi(name[len("protein"):])
		if err != nil || n < 1 || n > 7 {
			return nil, fmt.Errorf("bad protein-split level in %q (want protein1..protein7)", name)
		}
		return fppc.ProteinSplit(n, tm), nil
	}
	return nil, fmt.Errorf("unknown assay %q (pcr, invitroN, proteinN)", name)
}
