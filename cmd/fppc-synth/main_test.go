package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fppc"
)

func TestRunBuiltins(t *testing.T) {
	for _, args := range [][]string{
		{"-assay", "pcr"},
		{"-assay", "invitro2", "-target", "da"},
		{"-assay", "protein1", "-gantt"},
	} {
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out.String(), "routing:") {
			t.Errorf("%v: missing routing summary", args)
		}
	}
}

func TestRunProgramAndFrames(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "out.pins")
	frames := filepath.Join(dir, "out.bin")
	var out strings.Builder
	if err := run([]string{"-assay", "invitro1", "-program", prog, "-frames", frames}, &out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(prog); err != nil || fi.Size() == 0 {
		t.Errorf("pin program missing: %v", err)
	}
	if fi, err := os.Stat(frames); err != nil || fi.Size() == 0 {
		t.Errorf("frame stream missing: %v", err)
	}
	if !strings.Contains(out.String(), "pin load:") {
		t.Errorf("missing pin-load report")
	}
}

func TestRunDOTAndDump(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "pcr", "-dot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "digraph") {
		t.Errorf("dot output wrong: %.40q", out.String())
	}
	dump := filepath.Join(t.TempDir(), "a.json")
	out.Reset()
	if err := run([]string{"-assay", "pcr", "-dump-assay", dump}, &out); err != nil {
		t.Fatal(err)
	}
	// The dumped JSON round-trips through -file.
	out.Reset()
	if err := run([]string{"-file", dump}, &out); err != nil {
		t.Fatalf("reload failed: %v", err)
	}
	if !strings.Contains(out.String(), "PCR") {
		t.Errorf("reloaded assay lost its name")
	}
}

func TestRunASLFile(t *testing.T) {
	src := `
assay "spot"
fluid serum
s = dispense serum 2
d = detect s 4
output d waste
`
	path := filepath.Join(t.TempDir(), "spot.asl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-file", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spot") {
		t.Errorf("ASL assay not compiled")
	}
}

func TestRunTraceMetricsVerbose(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "m.prom")
	var out strings.Builder
	if err := run([]string{"-assay", "pcr", "-v", "-trace", trace, "-metrics", metrics}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stage timings:") {
		t.Errorf("-v stage table missing:\n%s", out.String())
	}
	tj, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"ph":"X"`, `"name":"compile"`, `"name":"route_boundary"`} {
		if !strings.Contains(string(tj), frag) {
			t.Errorf("trace missing %s", frag)
		}
	}
	var events []map[string]any
	if err := json.Unmarshal(tj, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	mp, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"fppc_router_retries_total 0",
		`fppc_stage_duration_seconds{stage="route"}`,
		"fppc_sched_timesteps",
	} {
		if !strings.Contains(string(mp), frag) {
			t.Errorf("metrics missing %s", frag)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-assay", "warpdrive"},
		{"-assay", "invitro9"},
		{"-target", "quantum"},
		{"-assay", "pcr", "-target", "da", "-program", "/tmp/x.pins"},
		{"-file", "/nonexistent/file.json"},
		{"-assay", "protein5"}, // needs -grow
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("%v: expected error", args)
		}
	}
}

func TestRunTimeoutAbortsWithTypedError(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-assay", "protein5", "-grow", "-timeout", "1ns"}, &out)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	var ce *fppc.CompileCanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *fppc.CompileCanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
}
