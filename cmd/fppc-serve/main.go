// fppc-serve runs the compilation service: a long-running HTTP server
// that compiles assays (ASL text or DAG JSON) into chip programs on
// demand, with a bounded worker pool, a content-addressed compile
// cache, request deduplication, per-request deadlines, and live
// Prometheus metrics.
//
// Usage:
//
//	fppc-serve -addr :8093
//	fppc-serve -addr 127.0.0.1:8093 -workers 4 -cache 512 -timeout 10s
//
// Endpoints:
//
//	POST /compile            — compile an assay (see doc/SERVICE.md for the schema)
//	GET  /metrics            — Prometheus text exposition, incl. Go runtime gauges
//	GET  /healthz            — liveness JSON
//	GET  /version            — build identity JSON
//	GET  /debug/telemetry    — chip telemetry snapshot of the latest compile
//	GET  /debug/requests     — flight-recorder digests of recent requests
//	GET  /debug/requests/{id} — one journal entry with its Chrome trace
//	GET  /debug/pprof/...    — net/http/pprof profiles
//
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fppc/internal/cli"
	"fppc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-serve: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8093", "listen address")
	workers := fs.Int("workers", 0, "max concurrent compilations (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 256, "compile cache capacity (entries)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request compile deadline")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "hard cap on client-requested deadlines")
	drain := fs.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")
	verify := fs.Bool("verify", false, "run the independent oracle on every compile (as if each request set verify:true)")
	journalN := fs.Int("journal", 256, "request journal capacity in entries (0 disables the flight recorder)")
	slo := fs.Duration("slo", 2*time.Second, "compile latency objective for fppc_service_slo_violations_total (0 disables)")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}

	journalCfg := *journalN
	if journalCfg == 0 {
		journalCfg = -1 // Config treats 0 as "default"; -1 disables.
	}
	sloCfg := *slo
	if sloCfg == 0 {
		sloCfg = -1
	}
	srv := service.New(service.Config{
		Workers:        *workers,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		ForceVerify:    *verify,
		JournalEntries: journalCfg,
		SLO:            sloCfg,
		Logger:         logger,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(out, "fppc-serve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "fppc-serve: shutting down (draining up to %s)\n", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
