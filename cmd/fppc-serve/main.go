// fppc-serve runs the compilation service: a long-running HTTP server
// that compiles assays (ASL text or DAG JSON) into chip programs on
// demand, with a bounded worker pool, a content-addressed compile
// cache, request deduplication, per-request deadlines, and live
// Prometheus metrics.
//
// Usage:
//
//	fppc-serve -addr :8093
//	fppc-serve -addr 127.0.0.1:8093 -workers 4 -cache 512 -timeout 10s
//
// Endpoints:
//
//	POST /compile            — compile an assay (see doc/SERVICE.md for the schema)
//	GET  /targets            — registered chip architectures with capability flags
//	GET  /metrics            — Prometheus text exposition, incl. Go runtime gauges
//	GET  /healthz            — liveness JSON
//	GET  /version            — build identity JSON
//	GET  /debug/telemetry    — chip telemetry snapshot of the latest compile
//	GET  /debug/requests     — flight-recorder digests of recent requests
//	GET  /debug/requests/{id} — one journal entry with its Chrome trace
//	GET  /debug/requests/{id}/profile — the pprof capture the SLO watchdog linked to that request
//	POST /debug/profile      — on-demand bounded CPU/heap capture ({"kind":"cpu","seconds":5})
//	GET  /debug/profile      — the triggered-capture ring, newest first
//	GET  /debug/profile/{id} — one capture's raw pprof bytes
//	GET  /debug/pprof/...    — net/http/pprof profiles
//
// With -fleet N the server also runs the chip-fleet control plane over
// N simulated chips (a rotation over every registered architecture,
// one with a benign manufacturing defect):
//
//	POST /fleet/jobs          — submit an assay for placement (202; the reconciler places it)
//	GET  /fleet/jobs          — list every job
//	GET  /fleet/jobs/{id}     — one job's placement state
//	GET  /fleet/chips         — chip health, faults, wear, placements
//	GET  /debug/fleet         — the placed/migrated/failed event log (?n=K)
//	POST /debug/fleet/degrade — inject seeded wear into one chip
//
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fppc/internal/cli"
	"fppc/internal/fleet"
	"fppc/internal/obs"
	"fppc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-serve: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8093", "listen address")
	workers := fs.Int("workers", 0, "max concurrent compilations (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 256, "compile cache capacity (entries)")
	compileWorkers := fs.Int("compile-workers", 0, "worker goroutines inside each compile's schedule/route phases (0 or 1 = sequential; output is byte-identical either way)")
	memoN := fs.Int("memo", 128, "incremental-recompilation memo capacity in entries (0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request compile deadline")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "hard cap on client-requested deadlines")
	drain := fs.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")
	verify := fs.Bool("verify", false, "run the independent oracle on every compile (as if each request set verify:true)")
	journalN := fs.Int("journal", 256, "request journal capacity in entries (0 disables the flight recorder)")
	slo := fs.Duration("slo", 2*time.Second, "compile latency objective for fppc_service_slo_violations_total (0 disables)")
	profiles := fs.Int("profiles", 16, "triggered pprof capture ring capacity (0 disables /debug/profile and SLO auto-capture)")
	profileCPU := fs.Duration("profile-cpu", time.Second, "CPU capture window for SLO-triggered profiles")
	profileCooldown := fs.Duration("profile-cooldown", 30*time.Second, "minimum spacing between SLO-triggered captures (0 = no cooldown)")
	fleetN := fs.Int("fleet", 0, "attach a chip-fleet control plane over N simulated chips (0 disables)")
	reconcile := fs.Duration("reconcile", 500*time.Millisecond, "fleet reconcile loop interval (with -fleet)")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}

	journalCfg := *journalN
	if journalCfg == 0 {
		journalCfg = -1 // Config treats 0 as "default"; -1 disables.
	}
	sloCfg := *slo
	if sloCfg == 0 {
		sloCfg = -1
	}
	profilesCfg := *profiles
	if profilesCfg == 0 {
		profilesCfg = -1 // Config treats 0 as "default"; -1 disables.
	}
	cooldownCfg := *profileCooldown
	if cooldownCfg == 0 {
		cooldownCfg = -1
	}
	// The fleet shares the server's metric registry so its series land
	// on /metrics, and runs its own reconcile loop until shutdown.
	var fl *fleet.Fleet
	ob := obs.NewMetricsOnly()
	if *fleetN > 0 {
		specs, err := fleet.ScenarioSpecs(*fleetN)
		if err != nil {
			return err
		}
		fl, err = fleet.New(fleet.Config{Chips: specs, Obs: ob})
		if err != nil {
			return err
		}
	}
	memoCfg := *memoN
	if memoCfg == 0 {
		memoCfg = -1 // Config treats 0 as "default"; -1 disables.
	}
	srv := service.New(service.Config{
		Workers:         *workers,
		CacheEntries:    *cache,
		CompileWorkers:  *compileWorkers,
		MemoEntries:     memoCfg,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		ForceVerify:     *verify,
		JournalEntries:  journalCfg,
		SLO:             sloCfg,
		ProfileEntries:  profilesCfg,
		ProfileCPU:      *profileCPU,
		ProfileCooldown: cooldownCfg,
		Logger:          logger,
		Obs:             ob,
		Fleet:           fl,
	})
	var fleetDone chan struct{}
	if fl != nil {
		fleetDone = make(chan struct{})
		go func() {
			defer close(fleetDone)
			fl.Run(ctx, *reconcile)
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if fl != nil {
		fmt.Fprintf(out, "fppc-serve: fleet control plane over %d chips (reconcile every %s)\n", *fleetN, *reconcile)
	}
	fmt.Fprintf(out, "fppc-serve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "fppc-serve: shutting down (draining up to %s)\n", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if fleetDone != nil {
		<-fleetDone
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
