package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeLifecycle boots the server on an ephemeral port, drives one
// compile request end to end, and verifies a graceful shutdown drains
// the listener.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out lockedBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out)
	}()

	addr := waitForAddr(t, &out)
	body, err := json.Marshal(map[string]any{
		"asl": "assay \"t\"\nfluid a\nfluid b\nx = dispense a 2\ny = dispense b 2\nm = mix x y 3\noutput m waste\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /compile: HTTP %d", resp.StatusCode)
	}
	var cr struct {
		Assay  string `json:"assay"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Assay != "t" {
		t.Errorf("assay = %q", cr.Assay)
	}

	cancel() // simulate SIGINT
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing drain notice in output:\n%s", out.String())
	}
}

// TestServeFleetFlag boots with -fleet 2, submits a job to the control
// plane, and waits for the background reconciler to place it.
func TestServeFleetFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out lockedBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-fleet", "2", "-reconcile", "50ms"}, &out)
	}()

	addr := waitForAddr(t, &out)
	body, err := json.Marshal(map[string]any{
		"asl": "assay \"t\"\nfluid a\nfluid b\nx = dispense a 2\ny = dispense b 2\nm = mix x y 3\noutput m waste\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/fleet/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("POST /fleet/jobs: HTTP %d, %+v", resp.StatusCode, st)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && st.State != "placed" {
		r, err := http.Get("http://" + addr + "/fleet/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "placed" {
		t.Fatalf("job never placed: %+v", st)
	}
	if !strings.Contains(out.String(), "fleet control plane over 2 chips") {
		t.Errorf("missing fleet banner:\n%s", out.String())
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected listen error")
	}
}

var addrRE = regexp.MustCompile(`listening on (\S+)`)

func waitForAddr(t *testing.T, out *lockedBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never reported its address; output: %q", out.String())
	return ""
}

// lockedBuffer makes the test's capture writer safe against the server
// goroutine writing while the test polls.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
