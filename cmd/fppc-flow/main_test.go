package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDilution(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "dilution3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"Serial Dilution 3", "50.00%", "25.00%", "12.50%"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestRunASL(t *testing.T) {
	src := "assay \"x\"\nfluid a\nfluid b\np = dispense a 2\nq = dispense b 2\nm = mix p q 3\nd = detect m 4\noutput d waste\n"
	path := filepath.Join(t.TempDir(), "x.asl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-file", path, "-fluid", "a"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "50.00%") {
		t.Errorf("1:1 mix should read 50%%:\n%s", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-assay", "nope"}, &out); err == nil {
		t.Errorf("unknown assay accepted")
	}
}
