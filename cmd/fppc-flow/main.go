// fppc-flow prints the ideal-mixing flow analysis of an assay: the volume
// and composition of every droplet reaching a detector or output — the
// dilution arithmetic a lab checks before running the protocol.
//
// Usage:
//
//	fppc-flow -assay protein2
//	fppc-flow -file ladder.asl -fluid protein
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"fppc"
	"fppc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fppc-flow: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fppc-flow", flag.ContinueOnError)
	name := fs.String("assay", "protein1", "built-in assay: pcr, invitroN, proteinN, dilutionN")
	file := fs.String("file", "", ".asl assay file (overrides -assay)")
	fluid := fs.String("fluid", "", "fluid to report concentrations for (default: first dispensed)")
	common := cli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.PrintVersion(out) {
		return nil
	}
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}
	logger.Debug("analyzing flow", "assay", *name, "file", *file)

	var assay *fppc.Assay
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		assay, err = fppc.ParseASL(string(data))
		if err != nil {
			return err
		}
	} else {
		var err error
		assay, err = builtin(*name)
		if err != nil {
			return err
		}
	}

	flows, err := fppc.AnalyzeFlow(assay)
	if err != nil {
		return err
	}
	track := *fluid
	if track == "" {
		for _, n := range assay.Nodes {
			if n.Kind == fppc.Dispense {
				track = n.Fluid
				break
			}
		}
	}
	fmt.Fprintf(out, "%s: tracking %q\n", assay.Name, track)
	fmt.Fprintf(out, "%-14s %-10s %8s %14s\n", "consumer", "kind", "volume", "concentration")
	type row struct {
		label, kind string
		vol, conc   float64
	}
	var rows []row
	for _, f := range flows {
		n := assay.Node(f.Consumer)
		if n.Kind != fppc.Detect && n.Kind != fppc.Output {
			continue
		}
		rows = append(rows, row{n.Label, n.Kind.String(), f.Volume, f.Concentration[track]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
	for _, r := range rows {
		fmt.Fprintf(out, "%-14s %-10s %8.3f %13.2f%%\n", r.label, r.kind, r.vol, 100*r.conc)
	}
	return nil
}

func builtin(name string) (*fppc.Assay, error) {
	tm := fppc.DefaultTiming()
	name = strings.ToLower(name)
	switch {
	case name == "pcr":
		return fppc.PCR(tm), nil
	case strings.HasPrefix(name, "invitro"):
		n, err := strconv.Atoi(name[len("invitro"):])
		if err != nil || n < 1 || n > 5 {
			return nil, fmt.Errorf("bad in-vitro index in %q", name)
		}
		return fppc.InVitroN(n, tm), nil
	case strings.HasPrefix(name, "protein"):
		n, err := strconv.Atoi(name[len("protein"):])
		if err != nil || n < 1 || n > 7 {
			return nil, fmt.Errorf("bad protein-split level in %q", name)
		}
		return fppc.ProteinSplit(n, tm), nil
	case strings.HasPrefix(name, "dilution"):
		n, err := strconv.Atoi(name[len("dilution"):])
		if err != nil || n < 1 || n > 20 {
			return nil, fmt.Errorf("bad dilution step count in %q", name)
		}
		return fppc.SerialDilution(n, tm), nil
	}
	return nil, fmt.Errorf("unknown assay %q", name)
}
