package fppc_test

import (
	"math/rand"
	"testing"

	"fppc"
)

// TestPublicAPIQuickstart exercises the documented entry points the way a
// downstream user would.
func TestPublicAPIQuickstart(t *testing.T) {
	assay := fppc.PCR(fppc.DefaultTiming())
	res, err := fppc.Compile(assay, fppc.Config{Target: fppc.TargetFPPC})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds() <= 0 {
		t.Errorf("total seconds = %v", res.TotalSeconds())
	}
	if res.Chip.PinCount() >= res.Chip.ElectrodeCount() {
		t.Errorf("pin-constrained chip has no pin sharing: %d pins, %d electrodes",
			res.Chip.PinCount(), res.Chip.ElectrodeCount())
	}
}

func TestPublicAPICustomAssay(t *testing.T) {
	a := fppc.NewAssay("glucose-check")
	s := a.Add(fppc.Dispense, "sample", "serum", 2)
	r := a.Add(fppc.Dispense, "reagent", "glucose", 2)
	m := a.Add(fppc.Mix, "mix", "", 3)
	d := a.Add(fppc.Detect, "read", "", 5)
	o := a.Add(fppc.Output, "done", "waste", 0)
	a.AddEdge(s, m)
	a.AddEdge(r, m)
	a.AddEdge(m, d)
	a.AddEdge(d, o)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := fppc.Compile(a, fppc.Config{Target: fppc.TargetFPPC})
	if err != nil {
		t.Fatal(err)
	}
	if res.OperationSeconds() != 10 {
		t.Errorf("makespan = %v, want 10 (2+3+5)", res.OperationSeconds())
	}
}

func TestPublicAPISimulate(t *testing.T) {
	assay := fppc.InVitroN(1, fppc.DefaultTiming())
	res, err := fppc.Compile(assay, fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := fppc.Simulate(res.Chip, res.Routing.Program, res.Routing.Events)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Outputs == 0 || len(tr.Remaining) != 0 {
		t.Errorf("simulation incomplete: outputs=%d remaining=%d", tr.Outputs, len(tr.Remaining))
	}
}

func TestPublicAPIBothTargets(t *testing.T) {
	a := fppc.ProteinSplit(1, fppc.DefaultTiming())
	for _, target := range []fppc.Target{fppc.TargetFPPC, fppc.TargetDA, fppc.TargetEnhancedFPPC} {
		res, err := fppc.Compile(a, fppc.Config{Target: target, AutoGrow: true})
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if res.TotalSeconds() <= 0 {
			t.Errorf("target %v: empty result", target)
		}
	}
}

func TestPublicAPITargetRegistry(t *testing.T) {
	specs := fppc.Targets()
	if len(specs) < 3 {
		t.Fatalf("registered targets = %d, want at least fppc, da, enhanced-fppc", len(specs))
	}
	for _, spec := range specs {
		got, err := fppc.ParseTarget(spec.Name)
		if err != nil || got.ID != spec.ID {
			t.Errorf("ParseTarget(%q) = %v, %v", spec.Name, got, err)
		}
	}
	def, err := fppc.ParseTarget("")
	if err != nil || def.ID != fppc.TargetFPPC {
		t.Errorf(`ParseTarget("") = %v, %v; want the fppc default`, def, err)
	}
	if _, err := fppc.ParseTarget("not-a-chip"); err == nil {
		t.Error("ParseTarget accepted an unknown name")
	}
	enh, err := fppc.ParseTarget("enhanced-fppc")
	if err != nil {
		t.Fatal(err)
	}
	caps := enh.Capabilities
	if !caps.PinProgram || !caps.FixedPortCapacity {
		t.Errorf("enhanced-fppc capabilities = %+v, want pin program + fixed port capacity", caps)
	}
}

func TestPublicAPIChips(t *testing.T) {
	chip, err := fppc.NewFPPCChip(fppc.MinFPPCHeight)
	if err != nil {
		t.Fatal(err)
	}
	if chip.PinCount() != 23 {
		t.Errorf("12x9 pins = %d, want 23", chip.PinCount())
	}
	da, err := fppc.NewDAChip(15, 19)
	if err != nil {
		t.Fatal(err)
	}
	if da.PinCount() != 285 {
		t.Errorf("DA pins = %d, want 285", da.PinCount())
	}
}

func TestPublicAPIRandomAssay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := fppc.RandomAssay(rng, 40, fppc.DefaultTiming())
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
