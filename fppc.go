// Package fppc is a from-scratch implementation of the field-programmable
// pin-constrained digital microfluidic biochip (DMFB) of Grissom & Brisk
// [DAC 2013], together with the full synthesis stack the paper evaluates:
//
//   - assay DAGs and the published benchmark generators (PCR, In-Vitro,
//     Protein Split);
//   - the FPPC chip architecture (Figure 5) and the direct-addressing
//     baseline it is compared against;
//   - list scheduling with module-type binding, the left-edge binder, and
//     the deadlock-free sequential router (sections 4.1-4.3);
//   - a cycle-level electrowetting simulator that replays compiled
//     per-cycle pin activation programs and verifies every droplet
//     operation physically happens.
//
// Quick start:
//
//	assay := fppc.PCR(fppc.DefaultTiming())
//	res, err := fppc.Compile(assay, fppc.Config{Target: fppc.TargetFPPC})
//	if err != nil { ... }
//	fmt.Println(res.Summary())
//
// The package is a thin facade over the internal packages; every type
// here is an alias, so values flow freely between the two layers.
package fppc

import (
	"context"
	"io"
	"math/rand"

	"fppc/internal/arch"
	"fppc/internal/asl"
	"fppc/internal/assays"
	"fppc/internal/core"
	"fppc/internal/ctrl"
	"fppc/internal/dag"
	"fppc/internal/faults"
	"fppc/internal/grid"
	"fppc/internal/obs"
	"fppc/internal/oracle"
	"fppc/internal/pins"
	"fppc/internal/recovery"
	"fppc/internal/router"
	"fppc/internal/sim"
	"fppc/internal/telemetry"
)

// Assay model.
type (
	// Assay is a directed acyclic graph of microfluidic operations.
	Assay = dag.Assay
	// Node is one operation in an assay.
	Node = dag.Node
	// OpKind enumerates the operation types.
	OpKind = dag.Kind
	// AssayStats summarizes an assay's structure.
	AssayStats = dag.Stats
)

// Operation kinds.
const (
	Dispense = dag.Dispense
	Mix      = dag.Mix
	Split    = dag.Split
	Store    = dag.Store
	Detect   = dag.Detect
	Output   = dag.Output
)

// NewAssay creates an empty assay with the given name.
func NewAssay(name string) *Assay { return dag.New(name) }

// ParseASL compiles assay-description-language source (see internal/asl)
// into a validated assay: the textual "field programming" surface.
func ParseASL(src string) (*Assay, error) { return asl.Parse(src) }

// MergeAssays combines independent assays into one DAG so a single
// field-programmable chip executes them concurrently — the
// multi-function scenario of the paper's Table 2, without a
// purpose-built chip.
func MergeAssays(name string, assays ...*Assay) (*Assay, error) {
	return dag.Merge(name, assays...)
}

// Benchmarks and timing.
type (
	// Timing holds the operation latencies used by the generators.
	Timing = assays.Timing
)

// DefaultTiming returns the paper-calibrated operation latencies.
func DefaultTiming() Timing { return assays.DefaultTiming() }

// PCR builds the polymerase chain reaction mixing-stage benchmark.
func PCR(tm Timing) *Assay { return assays.PCR(tm) }

// InVitro builds the s-samples x r-reagents in-vitro diagnostics assay.
func InVitro(samples, reagents int, tm Timing) *Assay { return assays.InVitro(samples, reagents, tm) }

// InVitroN returns the paper's In-Vitro benchmark n (1..5).
func InVitroN(n int, tm Timing) *Assay { return assays.InVitroN(n, tm) }

// ProteinSplit builds the protein serial-dilution benchmark with the
// given number of exponential split levels (paper: 1..7).
func ProteinSplit(levels int, tm Timing) *Assay { return assays.ProteinSplit(levels, tm) }

// SerialDilution builds an n-step 1:1 dilution ladder with per-rung
// detection, the calibration-curve workhorse of quantitative assays.
func SerialDilution(steps int, tm Timing) *Assay { return assays.SerialDilution(steps, tm) }

// AssayFlow is the ideal-mixing analysis of one droplet (volume and
// per-fluid concentration).
type AssayFlow = dag.Flow

// AnalyzeFlow computes the ideal volume and composition of every droplet
// in the assay (dilution arithmetic), cross-checkable against Simulate's
// collected droplets.
func AnalyzeFlow(a *Assay) ([]AssayFlow, error) { return dag.AnalyzeFlow(a) }

// WithDispense clones an assay with every dispense latency replaced
// (section 5.2's dispense-time ablation).
func WithDispense(a *Assay, duration int) *Assay { return assays.WithDispense(a, duration) }

// Table1Benchmarks returns the paper's thirteen Table 1 assays.
func Table1Benchmarks(tm Timing) []*Assay { return assays.Table1Benchmarks(tm) }

// RandomAssay builds a random well-formed assay with roughly n
// operations (useful for fuzzing user flows).
func RandomAssay(rng *rand.Rand, n int, tm Timing) *Assay { return assays.Random(rng, n, tm) }

// Architectures.
type (
	// Cell is one electrode position on the array (X right, Y down).
	Cell = grid.Cell
	// Chip is a concrete DMFB electrode array with pin wiring.
	Chip = arch.Chip
	// Module is a reserved operation region on a chip.
	Module = arch.Module
	// Electrode is one wired cell.
	Electrode = arch.Electrode
)

// NewFPPCChip builds the 12-wide field-programmable pin-constrained chip
// of Figure 5 at the given height (>= MinFPPCHeight).
func NewFPPCChip(height int) (*Chip, error) { return arch.NewFPPC(height) }

// NewDAChip builds a direct-addressing chip with the baseline's virtual
// topology.
func NewDAChip(w, h int) (*Chip, error) { return arch.NewDA(w, h) }

// MinFPPCHeight is the smallest usable FPPC chip height.
const MinFPPCHeight = arch.MinFPPCHeight

// CheckDesignRules verifies a chip's fluidic design rules: 3-phase
// transport buses, conflict-free intersections, module isolation,
// dedicated module I/O pins and bus reachability.
func CheckDesignRules(chip *Chip) error { return arch.CheckDesignRules(chip) }

// WiringReport estimates the PCB wiring cost of a chip (the paper's
// economic motivation for pin-constrained designs).
type WiringReport = arch.WiringReport

// AnalyzeWiring computes a chip's wiring-cost estimate.
func AnalyzeWiring(chip *Chip) WiringReport { return arch.AnalyzeWiring(chip) }

// ExportChipJSON writes a chip's complete wiring description (electrode
// positions, pin map, modules, ports) for driver boards and PCB tools.
func ExportChipJSON(w io.Writer, chip *Chip) error { return arch.ExportJSON(w, chip) }

// ImportChipJSON reads a wiring description back into a usable chip, so
// externally defined chips drive the same scheduler, router and
// simulator.
func ImportChipJSON(r io.Reader) (*Chip, error) { return arch.ImportJSON(r) }

// Synthesis.
type (
	// Config controls compilation (target, array size, auto-growth).
	Config = core.Config
	// Result is a compiled assay with its schedule, routing and metrics.
	Result = core.Result
	// RouterOptions forwards routing flags (program emission).
	RouterOptions = router.Options
	// Target selects the architecture.
	Target = core.Target
	// TargetSpec describes one registered architecture: geometry,
	// module inventory, scheduler/router strategy and capability flags.
	TargetSpec = core.TargetSpec
	// TargetCapabilities are the feature flags a target advertises
	// (pin program, telemetry wear, dynamic fault detection, ...).
	TargetCapabilities = core.Capabilities
)

// Compilation targets.
const (
	TargetFPPC         = core.TargetFPPC
	TargetDA           = core.TargetDA
	TargetEnhancedFPPC = core.TargetEnhancedFPPC
)

// Targets lists every registered architecture in registration order.
func Targets() []*TargetSpec { return core.Targets() }

// ParseTarget resolves a target's wire name ("fppc", "da",
// "enhanced-fppc"; "" selects the FPPC default) to its registered spec.
func ParseTarget(name string) (*TargetSpec, error) { return core.ParseTarget(name) }

// Compile synthesizes an assay onto the selected architecture: schedule,
// bind, route, and optionally emit the per-cycle pin program.
func Compile(a *Assay, cfg Config) (*Result, error) { return core.Compile(a, cfg) }

// CompileContext is Compile with cooperative cancellation: once ctx is
// done the scheduler and router loops abort promptly and the call
// returns a *CompileCanceledError wrapping the context's error.
func CompileContext(ctx context.Context, a *Assay, cfg Config) (*Result, error) {
	return core.CompileContext(ctx, a, cfg)
}

// CompileCanceledError is the typed error CompileContext returns when
// the context expires or is canceled mid-compilation.
type CompileCanceledError = core.ErrCanceled

// Observability.
type (
	// Observer records hierarchical spans (Compile > Schedule > Route >
	// Simulate) and pipeline metrics across every synthesis stage. It
	// exports Chrome trace_event JSON and Prometheus text. A nil Observer
	// disables observation at near-zero cost.
	Observer = obs.Observer
	// SpanRecord is one completed span (name, depth, start, duration).
	SpanRecord = obs.SpanRecord
)

// NewObserver returns an enabled observer with a fresh tracer and metric
// registry.
func NewObserver() *Observer { return obs.New() }

// WithObserver returns a copy of cfg that records onto ob.
func WithObserver(cfg Config, ob *Observer) Config {
	cfg.Obs = ob
	return cfg
}

// Pin programs and simulation.
type (
	// PinProgram is a compiled sequence of per-cycle pin activations.
	PinProgram = pins.Program
	// ReservoirEvent marks a dispense or output aligned to program cycles.
	ReservoirEvent = router.Event
	// SimTrace summarizes an electrode-level replay.
	SimTrace = sim.Trace
	// SimError is a physics violation during replay.
	SimError = sim.Error
)

// Simulate replays a compiled pin program on the chip at electrode
// level, verifying droplet physics cycle by cycle.
func Simulate(chip *Chip, prog *PinProgram, events []ReservoirEvent) (*SimTrace, error) {
	return sim.Run(chip, prog, events)
}

// SimulateObserved is Simulate recording a "simulate" span and
// electrode-level counters (cycles, droplet moves, interference checks,
// merges, splits) onto ob.
func SimulateObserved(chip *Chip, prog *PinProgram, events []ReservoirEvent, ob *Observer) (*SimTrace, error) {
	return sim.RunObserved(chip, prog, events, ob)
}

// Chip-level execution telemetry.
type (
	// TelemetryCollector accumulates cycle-accurate chip telemetry
	// (per-electrode actuations, duty cycles, bus occupancy, congestion,
	// droplet traces, router stalls) from the simulator, the oracle, or
	// the router. A nil collector disables every hook at the cost of one
	// nil check.
	TelemetryCollector = telemetry.Collector
	// TelemetrySnapshot is an immutable digest of collected telemetry
	// with JSON/CSV exporters and heatmap builders.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryGrid is a W x H value field renderable as an ASCII or SVG
	// heatmap.
	TelemetryGrid = telemetry.Grid
)

// NewTelemetryCollector returns an empty collector; bind it by passing
// it to SimulateCollected, RouterOptions.Telemetry, or
// OracleOptions.Collector.
func NewTelemetryCollector() *TelemetryCollector { return telemetry.New() }

// SimulateCollected is SimulateObserved additionally feeding every
// pin-activation frame and droplet footprint into tc.
func SimulateCollected(chip *Chip, prog *PinProgram, events []ReservoirEvent, ob *Observer, tc *TelemetryCollector) (*SimTrace, error) {
	return sim.RunCollected(chip, prog, events, ob, tc)
}

// Replay is a stepwise simulator with ASCII frame rendering.
type Replay = sim.Replay

// NewReplay prepares a cycle-by-cycle replay of a compiled program.
func NewReplay(chip *Chip, prog *PinProgram, events []ReservoirEvent) *Replay {
	return sim.NewReplay(chip, prog, events)
}

// RecoveryPlan is a re-execution plan for failed operations.
type RecoveryPlan = recovery.PlanResult

// PlanRecovery computes the minimal re-execution assay after the given
// operations failed (e.g. a detect flagged a bad droplet): the failure's
// downstream cone plus the ancestor chains needed to rebuild its inputs.
// The plan compiles on the same chip — dynamic recompilation is the
// field-programmable chip's answer to operation errors.
func PlanRecovery(a *Assay, failed []int) (*RecoveryPlan, error) {
	return recovery.Plan(a, failed)
}

// PinStats aggregates per-pin actuation counts over a program.
type PinStats = pins.Stats

// ComputePinStats scans a compiled program for per-pin load (the input
// to electrode-reliability analyses).
func ComputePinStats(p *PinProgram) PinStats { return pins.ComputeStats(p) }

// EncodeFrames streams a compiled program as dry-controller link frames
// (Figure 4's PC-to-chip interface; see internal/ctrl for the format).
func EncodeFrames(w io.Writer, prog *PinProgram, pinCount int) error {
	return ctrl.Encode(w, prog, pinCount)
}

// DecodeFrames parses a dry-controller frame stream back into a program.
func DecodeFrames(r io.Reader, pinCount int) (*PinProgram, error) {
	return ctrl.Decode(r, pinCount)
}

// LinkBandwidthBps returns the control-link bandwidth (bytes/second)
// needed to drive a chip with the given pin count at hz cycles/second.
func LinkBandwidthBps(pinCount, hz int) int { return ctrl.BandwidthBps(pinCount, hz) }

// Independent verification oracle.
type (
	// OracleReport is the oracle's account of one program replay.
	OracleReport = oracle.Report
	// OracleOptions tunes the oracle.
	OracleOptions = oracle.Options
	// OracleViolation is one oracle finding.
	OracleViolation = oracle.Violation
	// MutationSweep summarizes a fault-injection campaign.
	MutationSweep = oracle.SweepResult
)

// VerifyProgram replays a compiled pin program through the independent
// electrode-level oracle (no code shared with Simulate) and reports
// every fluidic-constraint violation it derives from the frames alone.
func VerifyProgram(chip *Chip, prog *PinProgram, events []ReservoirEvent, opts OracleOptions) *OracleReport {
	return oracle.Verify(chip, prog, events, opts)
}

// VerifyCompiled runs the full verification harness on a compiled
// result: oracle replay, assay-DAG invariants, and a cross-check
// against the simulator (frame-level when a pin program exists,
// schedule-level otherwise).
func VerifyCompiled(res *Result, opts OracleOptions) (*OracleReport, error) {
	return oracle.VerifyCompiled(res, opts)
}

// AssayEquivalence checks two compilations of one assay (typically FPPC
// vs the direct-addressing baseline) for assay-level equivalence: same
// completed operation set, same output droplet count.
func AssayEquivalence(a, b *Result) error { return oracle.AssayEquivalence(a, b) }

// SweepMutations injects single-frame pin corruptions through the
// controller link and counts how many the oracle catches.
func SweepMutations(res *Result, opts OracleOptions, sample int, rng *rand.Rand) (*MutationSweep, error) {
	return oracle.SweepMutations(res, opts, sample, rng)
}

// CanonicalAssay returns the assay renumbered into its canonical,
// content-derived node order; compiling canonical forms makes the
// pipeline invariant to how the caller numbered the DAG.
func CanonicalAssay(a *Assay) (*Assay, error) { return a.Canonical() }

// Hardware fault model and chaos harness.
type (
	// FaultSet is an immutable set of declared hardware defects
	// (stuck-open/stuck-closed electrodes, dead pin drivers). It plugs
	// into Config.Faults for fault-aware resynthesis, into
	// SimulateInjected for degraded replays, and into
	// OracleOptions.Faults for fault-aware verification.
	FaultSet = faults.Set
	// Fault is one declared hardware defect.
	Fault = faults.Fault
	// FaultKind classifies a hardware defect.
	FaultKind = faults.Kind
	// FaultConflictError rejects a cell declared both stuck-open and
	// stuck-closed.
	FaultConflictError = faults.ConflictError
	// FaultCampaignConfig parameterizes a chaos campaign.
	FaultCampaignConfig = faults.CampaignConfig
	// FaultCampaignResult aggregates a chaos campaign's classified runs.
	FaultCampaignResult = faults.CampaignResult
	// FaultRunReport is one classified chaos run.
	FaultRunReport = faults.RunReport
	// FaultOutcome classifies a chaos run (masked, resynthesized,
	// unsynthesizable, missed).
	FaultOutcome = faults.Outcome
	// UnsynthesizableError is the typed failure of a degraded-chip
	// compile: the fixed-size chip with its declared faults cannot host
	// the assay.
	UnsynthesizableError = core.ErrUnsynthesizable
)

// Hardware fault kinds.
const (
	FaultStuckOpen   = faults.StuckOpen
	FaultStuckClosed = faults.StuckClosed
	FaultDeadPin     = faults.DeadPin
)

// Chaos-run outcomes.
const (
	FaultMasked          = faults.Masked
	FaultResynthesized   = faults.Resynthesized
	FaultUnsynthesizable = faults.Unsynthesizable
	FaultMissed          = faults.Missed
)

// NewFaultSet builds a fault set, rejecting contradictory declarations
// with a *FaultConflictError.
func NewFaultSet(fs ...Fault) (*FaultSet, error) { return faults.New(fs...) }

// ParseFaultSpec parses the CLI/service fault syntax:
// "open@x,y;closed@x,y;dead#pin".
func ParseFaultSpec(spec string) (*FaultSet, error) { return faults.ParseSpec(spec) }

// FaultsFromWear derives a degradation fault set from a telemetry
// snapshot: electrodes at or above the duty threshold are declared
// stuck-open (dielectric wear-out).
func FaultsFromWear(snap *TelemetrySnapshot, threshold float64) (*FaultSet, error) {
	return faults.FromWear(snap, threshold)
}

// RandomFaultSet draws n distinct random faults on the chip.
func RandomFaultSet(rng *rand.Rand, chip *Chip, n int, allowDead bool) (*FaultSet, error) {
	return faults.RandomSet(rng, chip, n, allowDead)
}

// WithFaults returns a copy of cfg that synthesizes around the fault
// set: faulted module slots are excluded, routes avoid dead cells, and
// failures surface as *UnsynthesizableError (auto-grow is vetoed — a
// fault set describes one physical chip).
func WithFaults(cfg Config, set *FaultSet) Config {
	cfg.Faults = set
	return cfg
}

// SimulateInjected replays a compiled program on faulted hardware: the
// fault set perturbs each cycle's energized-electrode frame before the
// droplet physics runs.
func SimulateInjected(chip *Chip, prog *PinProgram, events []ReservoirEvent, ob *Observer, tc *TelemetryCollector, set *FaultSet) (*SimTrace, error) {
	var inj sim.Injector
	if set != nil {
		inj = set
	}
	return sim.RunInjected(chip, prog, events, ob, tc, inj)
}

// ClassifyFault runs the full chaos check for one assay and fault set:
// compile pristine, inject, detect, resynthesize when detected.
func ClassifyFault(a *Assay, target Target, set *FaultSet) (FaultRunReport, error) {
	return faults.Classify(a, target, set)
}

// FaultCampaign sweeps randomized fault sets over the benchmark assays,
// classifying every run (the chaos harness; a missed run means a fault
// corrupted an assay without any verification layer noticing).
func FaultCampaign(benchmarks []*Assay, cfg FaultCampaignConfig) (*FaultCampaignResult, error) {
	return faults.Campaign(benchmarks, cfg)
}

// CycleSeconds is the electrode actuation period (10 ms at 100 Hz).
const CycleSeconds = router.CycleSeconds

// TimeStepSeconds is the scheduling granularity (1 s).
const TimeStepSeconds = core.TimeStepSeconds
