module fppc

go 1.22
