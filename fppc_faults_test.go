package fppc_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fppc"
)

// TestPublicFaultSpecAndSets exercises the fault-declaration surface the
// way a lab tool would: parse the CLI syntax, build sets directly, and
// hit the conflict rejection.
func TestPublicFaultSpecAndSets(t *testing.T) {
	set, err := fppc.ParseFaultSpec("open@5,2; dead#7")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 || set.String() != "open@5,2;dead#7" {
		t.Errorf("parsed set = %q (len %d)", set, set.Len())
	}
	cell := fppc.Cell{X: 3, Y: 4}
	if _, err := fppc.NewFaultSet(
		fppc.Fault{Kind: fppc.FaultStuckOpen, Cell: cell},
		fppc.Fault{Kind: fppc.FaultStuckClosed, Cell: cell},
	); err == nil {
		t.Fatal("contradictory fault set accepted")
	} else {
		var ce *fppc.FaultConflictError
		if !errors.As(err, &ce) {
			t.Errorf("conflict error not typed: %v", err)
		}
	}

	chip, err := fppc.NewFPPCChip(21)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := fppc.RandomFaultSet(rand.New(rand.NewSource(11)), chip, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Len() != 3 {
		t.Errorf("random set has %d faults, want 3", rnd.Len())
	}
}

// TestPublicDegradedCompile runs the whole degraded-chip story through
// the facade: compile around declared faults, replay with injection, and
// verify with the known-fault oracle. It also derives a wear-based fault
// set from the replay's telemetry.
func TestPublicDegradedCompile(t *testing.T) {
	chip, err := fppc.NewFPPCChip(21)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fppc.NewFaultSet(fppc.Fault{Kind: fppc.FaultStuckOpen, Cell: chip.MixModules[0].Hold})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 1},
	}
	res, err := fppc.CompileContext(context.Background(), fppc.PCR(fppc.DefaultTiming()), fppc.WithFaults(cfg, set))
	if err != nil {
		t.Fatal(err)
	}
	tc := fppc.NewTelemetryCollector()
	trace, err := fppc.SimulateInjected(res.Chip, res.Routing.Program, res.Routing.Events, nil, tc, set)
	if err != nil {
		t.Fatalf("injected replay failed: %v", err)
	}
	if trace.Outputs == 0 {
		t.Error("degraded replay produced no outputs")
	}
	if _, err := fppc.VerifyCompiled(res, fppc.OracleOptions{Faults: set, KnownFaults: true}); err != nil {
		t.Fatalf("known-fault oracle rejected the degraded program: %v", err)
	}

	// Wear-derived degradation: an impossible duty threshold yields an
	// empty set, a non-positive one is rejected.
	worn, err := fppc.FaultsFromWear(tc.Snapshot(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if worn.Len() != 0 {
		t.Errorf("duty > 200%% matched %d electrodes", worn.Len())
	}
	if _, err := fppc.FaultsFromWear(tc.Snapshot(), 0); err == nil {
		t.Error("non-positive wear threshold accepted")
	}

	// A nil set composes: SimulateInjected degenerates to Simulate.
	if _, err := fppc.SimulateInjected(res.Chip, res.Routing.Program, res.Routing.Events, nil, nil, nil); err != nil {
		t.Fatalf("nil-set injection failed: %v", err)
	}
}

// TestPublicChaosHarness drives classification and a miniature campaign
// through the facade.
func TestPublicChaosHarness(t *testing.T) {
	tm := fppc.DefaultTiming()
	chip, err := fppc.NewFPPCChip(21)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fppc.NewFaultSet(fppc.Fault{Kind: fppc.FaultStuckOpen, Cell: chip.MixModules[0].Hold})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fppc.ClassifyFault(fppc.PCR(tm), fppc.TargetFPPC, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome == fppc.FaultMissed {
		t.Fatalf("fault missed: %+v", rep)
	}

	res, err := fppc.FaultCampaign(
		[]*fppc.Assay{fppc.PCR(tm), fppc.InVitroN(1, tm)},
		fppc.FaultCampaignConfig{Target: fppc.TargetFPPC, Runs: 1, MaxFaults: 1, Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 || res.Missed != 0 {
		t.Fatalf("campaign = %s", res.Summary())
	}
}

// TestPublicVerificationSurface covers the facade's verification and
// observability one-liners end to end: observed/collected replays, the
// raw oracle, cross-target equivalence, and the mutation sweep.
func TestPublicVerificationSurface(t *testing.T) {
	tm := fppc.DefaultTiming()
	canon, err := fppc.CanonicalAssay(fppc.PCR(tm))
	if err != nil {
		t.Fatal(err)
	}
	ob := fppc.NewObserver()
	cfg := fppc.WithObserver(fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 1},
	}, ob)
	res, err := fppc.Compile(canon, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fppc.SimulateObserved(res.Chip, res.Routing.Program, res.Routing.Events, ob); err != nil {
		t.Fatal(err)
	}
	tc := fppc.NewTelemetryCollector()
	if _, err := fppc.SimulateCollected(res.Chip, res.Routing.Program, res.Routing.Events, ob, tc); err != nil {
		t.Fatal(err)
	}
	rep := fppc.VerifyProgram(res.Chip, res.Routing.Program, res.Routing.Events, fppc.OracleOptions{})
	if !rep.Ok() {
		t.Fatalf("oracle rejected a pristine program: %v", rep.Violations)
	}
	da, err := fppc.Compile(fppc.PCR(tm), fppc.Config{Target: fppc.TargetDA})
	if err != nil {
		t.Fatal(err)
	}
	if err := fppc.AssayEquivalence(res, da); err != nil {
		t.Errorf("FPPC and DA compilations not equivalent: %v", err)
	}
	sweep, err := fppc.SweepMutations(res, fppc.OracleOptions{}, 4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Total == 0 {
		t.Error("mutation sweep injected nothing")
	}
}
