// Custompanel builds a custom clinical assay with the public API — a
// serum panel measuring three metabolites from one sample — and shows
// that the same pre-manufactured field-programmable chip runs it without
// any assay-specific pin assignment. This is the field-programmability
// the paper contributes: the chip is fixed, only the program changes.
package main

import (
	"fmt"
	"log"

	"fppc"
)

func main() {
	a := fppc.NewAssay("serum-panel")
	a.SetReservoirs("serum", 3)

	reagents := []struct {
		name   string
		detect int // seconds of enzymatic kinetics
	}{
		{"glucose-oxidase", 7},
		{"lactate-oxidase", 6},
		{"glutamate-oxidase", 7},
	}
	for _, r := range reagents {
		a.SetReservoirs(r.name, 1)
		sample := a.Add(fppc.Dispense, "serum/"+r.name, "serum", 2)
		reagent := a.Add(fppc.Dispense, r.name, r.name, 2)
		mix := a.Add(fppc.Mix, "mix/"+r.name, "", 3)
		detect := a.Add(fppc.Detect, "read/"+r.name, "", r.detect)
		out := a.Add(fppc.Output, "waste/"+r.name, "waste", 0)
		a.AddEdge(sample, mix)
		a.AddEdge(reagent, mix)
		a.AddEdge(mix, detect)
		a.AddEdge(detect, out)
	}
	if err := a.Validate(); err != nil {
		log.Fatal(err)
	}

	// The smallest chip (12x9: 2 mixers, 3 SSDs, 23 pins) already runs it.
	for _, h := range []int{9, 15, 21} {
		res, err := fppc.Compile(a, fppc.Config{Target: fppc.TargetFPPC, FPPCHeight: h})
		if err != nil {
			log.Fatalf("height %d: %v", h, err)
		}
		fmt.Printf("12x%-3d (%2d pins): panel completes in %.1fs (%0.fs operations + %.1fs routing)\n",
			h, res.Chip.PinCount(), res.TotalSeconds(), res.OperationSeconds(), res.RoutingSeconds())
	}
}
