// Multiplex runs the paper's Table 2 "multi-function" scenario the
// field-programmable way: instead of fabricating a chip that supports a
// fixed set of three assays, merge the three protocols into one DAG and
// execute them concurrently on the stock chip. The same binary also
// parses an assay written in the textual assay description language.
package main

import (
	"fmt"
	"log"

	"fppc"
)

const extraASL = `
assay "glucose-spot-check"
fluid serum
fluid glucose_ox

s = dispense serum 2
r = dispense glucose_ox 2
m = mix s r 3
d = detect m 7
output d waste
`

func main() {
	tm := fppc.DefaultTiming()

	// The three assays of the paper's Table 2, plus one written in ASL.
	extra, err := fppc.ParseASL(extraASL)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := fppc.MergeAssays("multi-function",
		fppc.PCR(tm), fppc.InVitroN(1, tm), extra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged assay: %d operations from 3 protocols\n", merged.Len())

	res, err := fppc.Compile(merged, fppc.Config{Target: fppc.TargetFPPC, AutoGrow: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// Compare with running them one after another.
	sequential := 0.0
	for _, a := range []*fppc.Assay{fppc.PCR(tm), fppc.InVitroN(1, tm), extra} {
		r, err := fppc.Compile(a, fppc.Config{Target: fppc.TargetFPPC, FPPCHeight: res.Chip.H})
		if err != nil {
			log.Fatal(err)
		}
		sequential += r.TotalSeconds()
	}
	fmt.Printf("concurrent: %.1fs vs sequential: %.1fs on the same %d-pin chip\n",
		res.TotalSeconds(), sequential, res.Chip.PinCount())
}
