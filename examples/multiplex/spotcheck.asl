# A one-off glucose spot check in the assay description language.
# Compile directly with:  fppc-synth -file examples/multiplex/spotcheck.asl
assay "glucose-spot-check"
fluid serum
fluid glucose_ox

s = dispense serum 2
r = dispense glucose_ox 2
m = mix s r 3
d = detect m 7
output d waste
