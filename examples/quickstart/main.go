// Quickstart: compile the PCR benchmark for the field-programmable
// pin-constrained chip and print what the synthesis flow produced.
package main

import (
	"fmt"
	"log"

	"fppc"
)

func main() {
	// The PCR mixing stage: eight reagents combined by a binary tree of
	// seven mixes (the paper's smallest benchmark).
	assay := fppc.PCR(fppc.DefaultTiming())

	// Compile for the paper's 12x21 workhorse chip.
	result, err := fppc.Compile(assay, fppc.Config{Target: fppc.TargetFPPC})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(result.Summary())
	fmt.Printf("the chip drives %d electrodes with only %d control pins\n",
		result.Chip.ElectrodeCount(), result.Chip.PinCount())
	fmt.Printf("schedule: %d time-steps, %d droplet routes\n",
		result.Schedule.Makespan, len(result.Schedule.Moves))

	// The same assay on the direct-addressing baseline needs a dedicated
	// pin per electrode.
	da, err := fppc.Compile(assay, fppc.Config{Target: fppc.TargetDA})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct-addressing baseline: %d pins for %.1fs total (vs %d pins for %.1fs)\n",
		da.Chip.PinCount(), da.TotalSeconds(), result.Chip.PinCount(), result.TotalSeconds())
}
