// Recovery demonstrates dynamic error recovery on the field-programmable
// chip: an In-Vitro panel runs, one detection flags a bad droplet, and
// the toolchain recompiles just the affected chain for immediate re-run
// on the same hardware. Assay-specific pin-constrained chips cannot do
// this — their wiring encodes one fixed schedule.
package main

import (
	"fmt"
	"log"

	"fppc"
)

func main() {
	assay := fppc.InVitroN(3, fppc.DefaultTiming())
	run, err := fppc.Compile(assay, fppc.Config{Target: fppc.TargetFPPC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original:", run.Summary())

	// Suppose the 5th detection reads back garbage.
	var failed int
	seen := 0
	for _, n := range assay.Nodes {
		if n.Kind == fppc.Detect {
			seen++
			if seen == 5 {
				failed = n.ID
			}
		}
	}
	fmt.Printf("detection %q failed; planning recovery...\n", assay.Node(failed).Label)

	plan, err := fppc.PlanRecovery(assay, []int{failed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery plan: %d of %d operations re-run\n", plan.Assay.Len(), assay.Len())

	rerun, err := fppc.Compile(plan.Assay, fppc.Config{
		Target:     fppc.TargetFPPC,
		FPPCHeight: run.Chip.H, // the very same chip
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovery:", rerun.Summary())
	fmt.Printf("total with recovery: %.1fs (vs %.1fs to repeat everything)\n",
		run.TotalSeconds()+rerun.TotalSeconds(), 2*run.TotalSeconds())
}
