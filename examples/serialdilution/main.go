// Serialdilution builds a protein-style serial dilution ladder, compiles
// it to a per-cycle pin activation program, and verifies the program on
// the electrode-level electrowetting simulator: every merge and split the
// DAG prescribes must physically happen on the pin-constrained chip, with
// no droplet drifting, tearing or colliding.
package main

import (
	"fmt"
	"log"

	"fppc"
)

func main() {
	a := fppc.NewAssay("dilution-ladder")
	a.SetReservoirs("protein", 1)
	a.SetReservoirs("buffer", 2)

	// A 4-step 1:2 dilution ladder: each rung mixes the carry droplet
	// with buffer, splits it, sends one half to detection and carries the
	// other down.
	carry := a.Add(fppc.Dispense, "sample", "protein", 7)
	for step := 1; step <= 4; step++ {
		buffer := a.Add(fppc.Dispense, fmt.Sprintf("buffer%d", step), "buffer", 7)
		mix := a.Add(fppc.Mix, fmt.Sprintf("dilute%d", step), "", 3)
		split := a.Add(fppc.Split, fmt.Sprintf("split%d", step), "", 0)
		detect := a.Add(fppc.Detect, fmt.Sprintf("read%d", step), "", 10)
		out := a.Add(fppc.Output, fmt.Sprintf("done%d", step), "product", 0)
		a.AddEdge(carry, mix)
		a.AddEdge(buffer, mix)
		a.AddEdge(mix, split)
		a.AddEdge(split, detect)
		a.AddEdge(detect, out)
		if step < 4 {
			carry = split // the other half continues down the ladder
		} else {
			last := a.Add(fppc.Output, "final", "product", 0)
			a.AddEdge(split, last)
		}
	}
	if err := a.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := fppc.Compile(a, fppc.Config{
		Target:   fppc.TargetFPPC,
		AutoGrow: true,
		Router:   fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())
	fmt.Printf("compiled pin program: %d cycles, %d reservoir events\n",
		res.Routing.Program.Len(), len(res.Routing.Events))

	trace, err := fppc.Simulate(res.Chip, res.Routing.Program, res.Routing.Events)
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}
	fmt.Printf("simulated on the electrode array: %d dispenses, %d merges, %d splits, %d outputs\n",
		trace.Dispenses, trace.Merges, trace.Splits, trace.Outputs)
	fmt.Printf("volume: %.2f dispensed, %.2f collected, %.2f left on chip\n",
		trace.VolumeIn, trace.VolumeOut, trace.VolumeRemaining())
	if len(trace.Remaining) == 0 && trace.Splits == 4 {
		fmt.Println("dilution ladder verified at electrode level")
	}
}
