// Sequences demonstrates the paper's hand-designed pin activation
// sequences (Figures 6, 7 and 8) by driving them directly on the
// electrode-level simulator: 3-phase bus transport, SSD module entry with
// other droplets held, and the stretch-and-split sequence.
package main

import (
	"fmt"
	"log"

	"fppc"
)

func main() {
	chip, err := fppc.NewFPPCChip(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(chip.Render())

	pin := func(x, y int) int {
		e := chip.ElectrodeAt(fppc.Cell{X: x, Y: y})
		if e == nil {
			log.Fatalf("no electrode at (%d,%d)", x, y)
		}
		return e.Pin
	}

	// Figure 6: a droplet rides the 3-phase wave along the top bus.
	fmt.Println("\n-- Figure 6: 3-phase transport --")
	var transport fppc.PinProgram
	events := []fppc.ReservoirEvent{{Cycle: 0, Cell: fppc.Cell{X: 0, Y: 0}}}
	transport.Append(pin(0, 0))
	for x := 1; x <= 7; x++ {
		transport.Append(pin(x, 0))
	}
	report(chip, &transport, events)

	// Figure 7(b): a droplet enters SSD module 1 while a droplet parked
	// in SSD module 0 holds still.
	fmt.Println("\n-- Figure 7(b): SSD entry with isolation --")
	s0, s1 := chip.SSDModules[0], chip.SSDModules[1]
	hold0 := chip.ElectrodeAt(s0.Hold).Pin
	var entry fppc.PinProgram
	events = []fppc.ReservoirEvent{
		{Cycle: 0, Cell: s0.Hold},
		{Cycle: 1, Cell: s1.Bus},
	}
	entry.Append(hold0)
	entry.Append(hold0, chip.ElectrodeAt(s1.Bus).Pin)
	entry.Append(hold0, chip.ElectrodeAt(s1.IO).Pin)
	entry.Append(hold0, chip.ElectrodeAt(s1.Hold).Pin)
	report(chip, &entry, events)

	// Figure 8: stretch over bus+IO, then split onto hold and bus.
	fmt.Println("\n-- Figure 8: splitting at an SSD module --")
	var split fppc.PinProgram
	events = []fppc.ReservoirEvent{{Cycle: 0, Cell: s0.Bus}}
	busPin := chip.ElectrodeAt(s0.Bus).Pin
	split.Append(busPin)
	split.Append(busPin, chip.ElectrodeAt(s0.IO).Pin)
	split.Append(busPin, chip.ElectrodeAt(s0.Hold).Pin)
	report(chip, &split, events)
}

func report(chip *fppc.Chip, prog *fppc.PinProgram, events []fppc.ReservoirEvent) {
	trace, err := fppc.Simulate(chip, prog, events)
	if err != nil {
		log.Fatalf("sequence failed: %v", err)
	}
	fmt.Printf("cycles %d, merges %d, splits %d; final droplets:", trace.Cycles, trace.Merges, trace.Splits)
	for _, d := range trace.Remaining {
		fmt.Printf(" %v(vol %.2g)", d.Cells, d.Volume)
	}
	fmt.Println()
}
