// Benchmarks regenerating the paper's evaluation, one per table and
// figure. Run with:
//
//	go test -bench=. -benchmem
//
// Every benchmark reports paper-relevant metrics (seconds of assay time,
// pins) as custom units alongside the usual ns/op.
package fppc_test

import (
	"bytes"
	"fmt"
	"testing"

	"fppc"
	"fppc/internal/asl"
	"fppc/internal/assays"
	"fppc/internal/bench"
)

// BenchmarkTable1 compiles each of the thirteen benchmarks for both
// architectures (the full Table 1 regeneration).
func BenchmarkTable1(b *testing.B) {
	tm := fppc.DefaultTiming()
	for _, a := range fppc.Table1Benchmarks(tm) {
		for _, tgt := range []struct {
			name   string
			target fppc.Target
		}{{"FP", fppc.TargetFPPC}, {"DA", fppc.TargetDA}} {
			b.Run(fmt.Sprintf("%s/%s", a.Name, tgt.name), func(b *testing.B) {
				var last *fppc.Result
				for i := 0; i < b.N; i++ {
					r, err := fppc.Compile(a, fppc.Config{Target: tgt.target, AutoGrow: true})
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.TotalSeconds(), "assay-s")
				b.ReportMetric(float64(last.Chip.PinCount()), "pins")
			})
		}
	}
}

// BenchmarkTable2 regenerates the assay-specific pin-constrained
// comparison (published constants + our FPPC measurements).
func BenchmarkTable2(b *testing.B) {
	tm := assays.DefaultTiming()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(tm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 sweeps the FPPC array sizes of Table 3.
func BenchmarkTable3(b *testing.B) {
	tm := assays.DefaultTiming()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(tm, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispenseAblation runs section 5.2's 7s-vs-2s dispense study
// on Protein Split 3 (paper: 189s -> ~100s).
func BenchmarkDispenseAblation(b *testing.B) {
	tm := assays.DefaultTiming()
	for _, d := range []int{0, 2} {
		b.Run(fmt.Sprintf("dispense=%d", d), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.Table3(tm, []int{18}, d)
				if err != nil {
					b.Fatal(err)
				}
				total = rows[0].TotalS["Protein Split 3"]
			}
			b.ReportMetric(total, "assay-s")
		})
	}
}

// BenchmarkFigure5Layout measures architecture generation across the
// paper's chip sizes (Figure 5 / S2).
func BenchmarkFigure5Layout(b *testing.B) {
	for _, h := range []int{9, 15, 21, 31} {
		b.Run(fmt.Sprintf("12x%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fppc.NewFPPCChip(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure6to8Simulation compiles PCR to a pin program and
// replays it at electrode level (the Figures 6-8 sequences end to end).
func BenchmarkFigure6to8Simulation(b *testing.B) {
	a := fppc.PCR(fppc.DefaultTiming())
	res, err := fppc.Compile(a, fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := fppc.Simulate(res.Chip, res.Routing.Program, res.Routing.Events)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Remaining) != 0 {
			b.Fatal("droplets left on chip")
		}
	}
}

// BenchmarkAblationOutputPorts quantifies the dual-output-port design
// choice (DESIGN.md). Measured outcome: the nearest-port retargeting
// already picks the good top-right port with a single reservoir, so the
// second port changes Protein Split 3 routing by only a few percent —
// the design choice is cheap insurance rather than a large win.
func BenchmarkAblationOutputPorts(b *testing.B) {
	a := fppc.ProteinSplit(3, fppc.DefaultTiming())
	for _, single := range []bool{false, true} {
		name := "dual"
		if single {
			name = "single"
		}
		b.Run(name, func(b *testing.B) {
			var routing float64
			for i := 0; i < b.N; i++ {
				r, err := fppc.Compile(a, fppc.Config{Target: fppc.TargetFPPC, SingleOutputPort: single})
				if err != nil {
					b.Fatal(err)
				}
				routing = r.RoutingSeconds()
			}
			b.ReportMetric(routing, "routing-s")
		})
	}
}

// BenchmarkSynthesisThroughput measures the compiler on the largest
// benchmark (Protein Split 7, ~2700 operations).
func BenchmarkSynthesisThroughput(b *testing.B) {
	a := fppc.ProteinSplit(7, fppc.DefaultTiming())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fppc.Compile(a, fppc.Config{Target: fppc.TargetFPPC, AutoGrow: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserverOverhead compares Compile(PCR) with observation
// disabled (nil observer: the default and the hot path every other
// benchmark exercises) against a live observer recording every span and
// counter. The disabled case must be indistinguishable from the seed's
// un-instrumented compiler.
func BenchmarkObserverOverhead(b *testing.B) {
	a := fppc.PCR(fppc.DefaultTiming())
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fppc.Compile(a, fppc.Config{Target: fppc.TargetFPPC}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ob := fppc.NewObserver()
			if _, err := fppc.Compile(a, fppc.WithObserver(fppc.Config{Target: fppc.TargetFPPC}, ob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkASLParse measures the assay-language front end.
func BenchmarkASLParse(b *testing.B) {
	a := fppc.ProteinSplit(2, fppc.DefaultTiming())
	src, err := asl.Format(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := fppc.ParseASL(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryPlan measures dynamic-recompilation planning on the
// largest benchmark.
func BenchmarkRecoveryPlan(b *testing.B) {
	a := fppc.ProteinSplit(5, fppc.DefaultTiming())
	failed := -1
	for _, n := range a.Nodes {
		if n.Kind == fppc.Detect {
			failed = n.ID
			break
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fppc.PlanRecovery(a, []int{failed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerStream measures the dry-controller link encoder on
// a full compiled program.
func BenchmarkControllerStream(b *testing.B) {
	res, err := fppc.Compile(fppc.ProteinSplit(2, fppc.DefaultTiming()), fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 12},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := fppc.EncodeFrames(&buf, res.Routing.Program, res.Chip.PinCount()); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkElectrodeReplay measures the electrowetting simulator on the
// Protein Split 2 program (~1k cycles, 40 reservoir events).
func BenchmarkElectrodeReplay(b *testing.B) {
	res, err := fppc.Compile(fppc.ProteinSplit(2, fppc.DefaultTiming()), fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := fppc.Simulate(res.Chip, res.Routing.Program, res.Routing.Events)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Remaining) != 0 {
			b.Fatal("droplets left")
		}
	}
}
