package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleDoc builds a small bench artifact; scale multiplies every
// metric so tests can inject a uniform regression.
func sampleDoc(scale float64) map[string]any {
	ms := func(v float64) float64 { return v * scale }
	n := func(v float64) int64 { return int64(v * scale) }
	return map[string]any{
		"tables": map[string]any{
			"table1": []map[string]any{
				{
					"Name": "PCR (mixing tree)",
					"DA":   map[string]any{"SynthMS": ms(2.0)},
					"FP":   map[string]any{"SynthMS": ms(3.0)},
					"EFP":  map[string]any{"SynthMS": ms(2.5)},
				},
			},
			"cost": []map[string]any{
				{
					"Benchmark": "PCR (mixing tree)", "Target": "fppc", "Stage": "compile",
					"WallMS": ms(3.0), "CPUMS": ms(2.8), "Allocs": n(120000), "Bytes": n(9000000),
				},
			},
		},
		"benchmarks": []map[string]any{
			{
				"package": "fppc/internal/sim", "name": "BenchmarkStep",
				"ns_per_op": ms(45000), "bytes_per_op": n(230000), "allocs_per_op": n(1200),
			},
		},
	}
}

func writeDoc(t *testing.T, name string, doc map[string]any) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var defaultOpts = options{
	warnCount: 0.10, failCount: 0.30,
	warnTime: 0.25, failTime: 0.50,
	minMS: 1.0, minNs: 1000, minAllocs: 500, minBytes: 65536,
}

// TestSelfDiffPasses pins the ratchet's no-op case: comparing an
// artifact against itself reports nothing and exits zero.
func TestSelfDiffPasses(t *testing.T) {
	path := writeDoc(t, "base.json", sampleDoc(1))
	var out strings.Builder
	failed, err := run(path, path, defaultOpts, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("self-diff failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "No regressions past thresholds") {
		t.Errorf("self-diff report:\n%s", out.String())
	}
}

// TestInjectedRegressionFails is the acceptance criterion: a synthetic
// 50% growth in every metric must trip the count-metric fail tier.
func TestInjectedRegressionFails(t *testing.T) {
	oldPath := writeDoc(t, "base.json", sampleDoc(1))
	newPath := writeDoc(t, "regressed.json", sampleDoc(1.5))
	var out strings.Builder
	failed, err := run(oldPath, newPath, defaultOpts, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("injected +50%% regression passed:\n%s", out.String())
	}
	report := out.String()
	// Deterministic count rows fail; time rows only warn by default.
	if !strings.Contains(report, "| FAIL | `cost/PCR (mixing tree)/fppc/compile/allocs`") {
		t.Errorf("allocs row not failed:\n%s", report)
	}
	if !strings.Contains(report, "| warn | `table1/PCR (mixing tree)/fppc/synth_ms`") {
		t.Errorf("synth time row not warned:\n%s", report)
	}
}

// TestTimeFailEscalates: with -time-fail, a big time regression fails
// even when counts are stable.
func TestTimeFailEscalates(t *testing.T) {
	base := sampleDoc(1)
	slow := sampleDoc(1)
	slow["tables"].(map[string]any)["table1"].([]map[string]any)[0]["FP"] = map[string]any{"SynthMS": 9.0}
	oldPath := writeDoc(t, "base.json", base)
	newPath := writeDoc(t, "slow.json", slow)

	opts := defaultOpts
	var out strings.Builder
	failed, err := run(oldPath, newPath, opts, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("time regression failed without -time-fail:\n%s", out.String())
	}
	opts.timeFail = true
	out.Reset()
	failed, err = run(oldPath, newPath, opts, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("3x synth slowdown passed under -time-fail:\n%s", out.String())
	}
}

// TestFloorSkipsNoiseRows: a huge relative swing on a sub-floor row is
// scheduler noise and must not even warn.
func TestFloorSkipsNoiseRows(t *testing.T) {
	base := sampleDoc(1)
	base["tables"].(map[string]any)["table1"].([]map[string]any)[0]["FP"] = map[string]any{"SynthMS": 0.2}
	noisy := sampleDoc(1)
	noisy["tables"].(map[string]any)["table1"].([]map[string]any)[0]["FP"] = map[string]any{"SynthMS": 0.9}
	oldPath := writeDoc(t, "base.json", base)
	newPath := writeDoc(t, "noisy.json", noisy)
	var out strings.Builder
	failed, err := run(oldPath, newPath, defaultOpts, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed || strings.Contains(out.String(), "synth_ms") {
		t.Errorf("sub-floor +350%% row reported:\n%s", out.String())
	}
}

// TestMissingAndNewRowsReported: renames surface as missing/new rows
// (warn-level prose, not failures).
func TestMissingAndNewRowsReported(t *testing.T) {
	base := sampleDoc(1)
	renamed := sampleDoc(1)
	renamed["benchmarks"].([]map[string]any)[0]["name"] = "BenchmarkStepV2"
	oldPath := writeDoc(t, "base.json", base)
	newPath := writeDoc(t, "renamed.json", renamed)
	var out strings.Builder
	failed, err := run(oldPath, newPath, defaultOpts, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("rename treated as failure:\n%s", out.String())
	}
	report := out.String()
	if !strings.Contains(report, "bench/fppc/internal/sim/BenchmarkStep/ns_op") ||
		!strings.Contains(report, "bench/fppc/internal/sim/BenchmarkStepV2/ns_op") {
		t.Errorf("missing/new rows not reported:\n%s", report)
	}
}

// TestLoadbenchSchema: loadbench artifacts compare p95 and inverted
// throughput (lower rps is the regression).
func TestLoadbenchSchema(t *testing.T) {
	mk := func(p95, rps float64) map[string]any {
		return map[string]any{
			"mixes": []map[string]any{
				{"name": "cache-friendly", "p95_ms": p95, "throughput_rps": rps},
			},
		}
	}
	oldPath := writeDoc(t, "base.json", mk(20, 400))
	newPath := writeDoc(t, "slow.json", mk(21, 250))
	var out strings.Builder
	failed, err := run(oldPath, newPath, defaultOpts, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("throughput drop failed without -time-fail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "| warn | `load/cache-friendly/throughput_rps` | 400 | 250 | +38% |") {
		t.Errorf("inverted throughput row not warned:\n%s", out.String())
	}
}

// TestMarkdownArtifact: -md writes the same report to disk for the CI
// artifact upload.
func TestMarkdownArtifact(t *testing.T) {
	path := writeDoc(t, "base.json", sampleDoc(1))
	mdPath := filepath.Join(t.TempDir(), "benchdiff.md")
	var out strings.Builder
	if _, err := run(path, path, defaultOpts, mdPath, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != out.String() {
		t.Error("markdown artifact differs from stdout report")
	}
}

// TestRejectsEmptyDoc: a file with no recognizable sections is an
// error, not a silent all-pass.
func TestRejectsEmptyDoc(t *testing.T) {
	path := writeDoc(t, "empty.json", map[string]any{"unrelated": true})
	var out strings.Builder
	if _, err := run(path, path, defaultOpts, "", &out); err == nil {
		t.Fatal("empty artifact accepted")
	}
}
