// Command benchdiff compares two benchmark artifacts and reports
// regressions with noise-aware thresholds — the perf ratchet CI runs
// against the committed baseline (scripts/bench_baseline.json),
// mirroring the coverage ratchet in scripts/coverage.sh.
//
// Usage:
//
//	go run ./scripts/benchdiff OLD.json NEW.json [-md benchdiff.md] [-time-fail]
//
// It understands two schemas, auto-detected:
//
//   - make bench artifacts (BENCH.json): Table 1 SynthMS per target,
//     the per-stage cost matrix (wall/CPU/allocs/bytes), and the
//     go test -bench micro rows (ns/op, B/op, allocs/op);
//   - make loadbench artifacts (BENCH_LOAD.json): per-mix throughput
//     and latency percentiles.
//
// Deterministic count metrics (allocs, bytes) carry a fail tier: they
// are machine-independent, so a >30% growth is a real regression
// wherever the two artifacts were produced. Time metrics (SynthMS,
// wall, CPU, ns/op, p95, throughput) are cross-machine noisy, so they
// warn by default and only fail with -time-fail (for runs produced on
// the same machine). Rows below the absolute floors are skipped —
// a 40% swing on a 0.3 ms row is scheduler noise, not signal.
//
// Exit status: 0 when no fail-tier findings, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strings"
)

type archRes struct {
	SynthMS float64
}

type table1Row struct {
	Name string
	DA   archRes
	FP   archRes
	EFP  *archRes
}

type costRow struct {
	Benchmark string
	Target    string
	Stage     string
	WallMS    float64
	CPUMS     float64
	Allocs    int64
	Bytes     int64
	Note      string
}

type microBench struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type mixRow struct {
	Name       string  `json:"name"`
	P95MS      float64 `json:"p95_ms"`
	Throughput float64 `json:"throughput_rps"`
}

// doc is the union of both artifact schemas; the decoder fills
// whichever sections the file carries.
type doc struct {
	Tables struct {
		Table1 []table1Row `json:"table1"`
		Cost   []costRow   `json:"cost"`
	} `json:"tables"`
	Benchmarks []microBench `json:"benchmarks"`
	Mixes      []mixRow     `json:"mixes"`
}

// metric classes decide the threshold tier.
const (
	classCount = "count" // deterministic: allocs, bytes
	classTime  = "time"  // machine-dependent: ms, ns/op, rps
)

// row is one comparable metric extracted from an artifact. Higher is
// worse unless invert (throughput).
type row struct {
	key    string // stable identity across artifacts
	class  string
	invert bool
	value  float64
	floor  float64 // skip when both sides are below this
}

type options struct {
	warnCount, failCount float64
	warnTime, failTime   float64
	timeFail             bool
	minMS                float64
	minNs                float64
	minAllocs            float64
	minBytes             float64
}

// finding is one threshold crossing.
type finding struct {
	key      string
	class    string
	old, new float64
	ratio    float64 // relative regression, positive is worse
	fail     bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	md := fs.String("md", "", "also write a markdown summary to this path")
	timeFail := fs.Bool("time-fail", false, "escalate time-metric regressions past the fail threshold to failures (same-machine artifacts only)")
	warnCount := fs.Float64("warn-count", 0.10, "warn when a count metric grows by this fraction")
	failCount := fs.Float64("fail-count", 0.30, "fail when a count metric grows by this fraction")
	warnTime := fs.Float64("warn-time", 0.25, "warn when a time metric grows by this fraction")
	failTime := fs.Float64("fail-time", 0.50, "with -time-fail: fail when a time metric grows by this fraction")
	minMS := fs.Float64("min-ms", 1.0, "skip millisecond rows where both sides are below this")
	minNs := fs.Float64("min-ns", 1000, "skip ns/op rows where both sides are below this")
	minAllocs := fs.Float64("min-allocs", 500, "skip allocs rows where both sides are below this")
	minBytes := fs.Float64("min-bytes", 65536, "skip byte rows where both sides are below this")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	opts := options{
		warnCount: *warnCount, failCount: *failCount,
		warnTime: *warnTime, failTime: *failTime, timeFail: *timeFail,
		minMS: *minMS, minNs: *minNs, minAllocs: *minAllocs, minBytes: *minBytes,
	}
	failed, err := run(fs.Arg(0), fs.Arg(1), opts, *md, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

func run(oldPath, newPath string, opts options, mdPath string, out io.Writer) (failed bool, err error) {
	oldRows, err := loadRows(oldPath, opts)
	if err != nil {
		return false, err
	}
	newRows, err := loadRows(newPath, opts)
	if err != nil {
		return false, err
	}
	findings, missing, added := diff(oldRows, newRows, opts)

	report := render(oldPath, newPath, findings, missing, added, len(oldRows), opts)
	fmt.Fprint(out, report)
	if mdPath != "" {
		if err := os.WriteFile(mdPath, []byte(report), 0o644); err != nil {
			return false, err
		}
	}
	for _, f := range findings {
		if f.fail {
			return true, nil
		}
	}
	return false, nil
}

func loadRows(path string, opts options) (map[string]row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rows := map[string]row{}
	add := func(r row) {
		if r.value > 0 {
			rows[r.key] = r
		}
	}
	for _, t := range d.Tables.Table1 {
		add(row{key: "table1/" + t.Name + "/fppc/synth_ms", class: classTime, value: t.FP.SynthMS, floor: opts.minMS})
		add(row{key: "table1/" + t.Name + "/da/synth_ms", class: classTime, value: t.DA.SynthMS, floor: opts.minMS})
		if t.EFP != nil {
			add(row{key: "table1/" + t.Name + "/enhanced-fppc/synth_ms", class: classTime, value: t.EFP.SynthMS, floor: opts.minMS})
		}
	}
	for _, c := range d.Tables.Cost {
		if c.Note != "" {
			continue
		}
		base := fmt.Sprintf("cost/%s/%s/%s/", c.Benchmark, c.Target, c.Stage)
		add(row{key: base + "wall_ms", class: classTime, value: c.WallMS, floor: opts.minMS})
		add(row{key: base + "cpu_ms", class: classTime, value: c.CPUMS, floor: opts.minMS})
		add(row{key: base + "allocs", class: classCount, value: float64(c.Allocs), floor: opts.minAllocs})
		add(row{key: base + "bytes", class: classCount, value: float64(c.Bytes), floor: opts.minBytes})
	}
	for _, b := range d.Benchmarks {
		base := "bench/" + b.Package + "/" + b.Name + "/"
		add(row{key: base + "ns_op", class: classTime, value: b.NsPerOp, floor: opts.minNs})
		add(row{key: base + "allocs_op", class: classCount, value: float64(b.AllocsPerOp), floor: opts.minAllocs})
		add(row{key: base + "bytes_op", class: classCount, value: float64(b.BytesPerOp), floor: opts.minBytes})
	}
	for _, m := range d.Mixes {
		add(row{key: "load/" + m.Name + "/p95_ms", class: classTime, value: m.P95MS, floor: opts.minMS})
		add(row{key: "load/" + m.Name + "/throughput_rps", class: classTime, invert: true, value: m.Throughput})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no comparable rows (not a bench or loadbench artifact?)", path)
	}
	return rows, nil
}

// diff compares the two row sets, returning threshold findings plus
// the keys missing from / new in the second artifact.
func diff(oldRows, newRows map[string]row, opts options) (findings []finding, missing, added []string) {
	for key, o := range oldRows {
		n, ok := newRows[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		// Sub-floor rows are noise on both sides.
		if o.floor > 0 && o.value < o.floor && n.value < o.floor {
			continue
		}
		// ratio > 0 means "worse": slower, more allocs, or (inverted)
		// less throughput.
		var ratio float64
		if o.invert {
			ratio = (o.value - n.value) / o.value
		} else {
			ratio = (n.value - o.value) / o.value
		}
		warn, fail := opts.warnTime, math.Inf(1)
		if o.class == classCount {
			warn, fail = opts.warnCount, opts.failCount
		} else if opts.timeFail {
			fail = opts.failTime
		}
		if ratio < warn {
			continue
		}
		findings = append(findings, finding{
			key: key, class: o.class, old: o.value, new: n.value,
			ratio: ratio, fail: ratio >= fail,
		})
	}
	for key := range newRows {
		if _, ok := oldRows[key]; !ok {
			added = append(added, key)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].fail != findings[j].fail {
			return findings[i].fail
		}
		return findings[i].ratio > findings[j].ratio
	})
	sort.Strings(missing)
	sort.Strings(added)
	return findings, missing, added
}

// render produces the report, written to stdout and (verbatim) to the
// -md file: it is plain enough to read in a terminal and valid
// markdown for the CI artifact.
func render(oldPath, newPath string, findings []finding, missing, added []string, total int, opts options) string {
	var b strings.Builder
	fails, warns := 0, 0
	for _, f := range findings {
		if f.fail {
			fails++
		} else {
			warns++
		}
	}
	fmt.Fprintf(&b, "# benchdiff: %s vs %s\n\n", oldPath, newPath)
	fmt.Fprintf(&b, "%d comparable rows; %d fail, %d warn", total, fails, warns)
	if !opts.timeFail {
		fmt.Fprintf(&b, " (time metrics warn-only; -time-fail escalates)")
	}
	fmt.Fprintf(&b, "\n\n")
	if len(findings) > 0 {
		fmt.Fprintf(&b, "| tier | metric | old | new | change |\n")
		fmt.Fprintf(&b, "|------|--------|----:|----:|-------:|\n")
		for _, f := range findings {
			tier := "warn"
			if f.fail {
				tier = "FAIL"
			}
			fmt.Fprintf(&b, "| %s | `%s` | %s | %s | +%.0f%% |\n",
				tier, f.key, formatVal(f.old), formatVal(f.new), f.ratio*100)
		}
		fmt.Fprintf(&b, "\n")
	} else {
		fmt.Fprintf(&b, "No regressions past thresholds.\n\n")
	}
	if len(missing) > 0 {
		fmt.Fprintf(&b, "%d rows in the baseline are missing from the new artifact (renamed or removed benchmarks):\n\n", len(missing))
		for _, k := range missing {
			fmt.Fprintf(&b, "- `%s`\n", k)
		}
		fmt.Fprintf(&b, "\n")
	}
	if len(added) > 0 {
		fmt.Fprintf(&b, "%d new rows have no baseline yet (refresh with `make bench-baseline`):\n\n", len(added))
		for _, k := range added {
			fmt.Fprintf(&b, "- `%s`\n", k)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

func formatVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
