#!/bin/sh
# coverage.sh — run the test suite with coverage and enforce the ratchet:
# total statement coverage must not drop below the floor recorded in
# scripts/coverage_floor.txt. Raise the floor with `scripts/coverage.sh
# -update` after landing work that improves coverage; never lower it.
set -eu

cd "$(dirname "$0")/.."
floor_file=scripts/coverage_floor.txt
profile="${COVERPROFILE:-$(mktemp)}"

go test -count=1 -coverprofile="$profile" ./... >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
floor=$(cat "$floor_file")

if [ "${1:-}" = "-update" ]; then
    echo "$total" >"$floor_file"
    echo "coverage floor updated: $floor% -> $total%"
    exit 0
fi

echo "total coverage: $total% (floor: $floor%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
    echo "FAIL: coverage $total% dropped below the ratchet floor of $floor%" >&2
    echo "(if this drop is intentional, lower $floor_file in the same change" >&2
    echo "and justify it in the commit message)" >&2
    exit 1
fi
