// Command benchjson produces the repo's benchmark artifact: the paper
// tables and per-stage cost matrix from `fppc-bench -json` plus
// `go test -bench` results for the simulator and service hot paths,
// merged into one JSON document (BENCH.json at the repo root; uploaded
// by the CI bench job and diffed by scripts/benchdiff).
//
// Usage: go run ./scripts/benchjson [-o BENCH.json] [-benchtime 1x]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// microBench is one parsed `go test -bench` result line.
type microBench struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches e.g.
// BenchmarkSimTelemetryOff-8   2286   506732 ns/op   138392 B/op   1525 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// benchPackages are the hot paths the artifact tracks: the cycle-level
// simulator (telemetry on/off overhead) and the compile service.
var benchPackages = []string{"./internal/sim", "./internal/service"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH.json", "output file")
	quick := flag.String("benchtime", "", "override -benchtime (e.g. 1x for smoke runs)")
	flag.Parse()
	if err := run(*out, *quick); err != nil {
		log.Fatal(err)
	}
}

func run(out, benchtime string) error {
	doc := struct {
		Tables     json.RawMessage `json:"tables"`
		Benchmarks []microBench    `json:"benchmarks"`
	}{}

	tables, err := capture("go", "run", "./cmd/fppc-bench", "-json", "-table", "1")
	if err != nil {
		return err
	}
	if !json.Valid(tables) {
		return fmt.Errorf("fppc-bench -json emitted invalid JSON:\n%.300s", tables)
	}
	doc.Tables = json.RawMessage(bytes.TrimSpace(tables))

	for _, pkg := range benchPackages {
		args := []string{"test", "-run", "^$", "-bench", ".", "-benchmem", pkg}
		if benchtime != "" {
			args = append(args, "-benchtime", benchtime)
		}
		raw, err := capture("go", args...)
		if err != nil {
			return err
		}
		doc.Benchmarks = append(doc.Benchmarks, parseBench(pkg, string(raw))...)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines parsed from %v", benchPackages)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d micro-benchmarks)\n", out, len(doc.Benchmarks))
	return nil
}

func capture(name string, args ...string) ([]byte, error) {
	cmd := exec.Command(name, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", name, strings.Join(args, " "), err)
	}
	return out, nil
}

func parseBench(pkg, out string) []microBench {
	var res []microBench
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := microBench{Package: strings.TrimPrefix(pkg, "./"), Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		res = append(res, b)
	}
	return res
}
