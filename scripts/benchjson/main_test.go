package main

import "testing"

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: fppc/internal/sim
BenchmarkSimTelemetryOff-8   	    2286	    506732 ns/op	  138392 B/op	    1525 allocs/op
BenchmarkSimTelemetryOn-8    	    1879	    638543 ns/op	  240576 B/op	    2014 allocs/op
BenchmarkNoMem               	  100000	     10500 ns/op
PASS
ok  	fppc/internal/sim	3.292s
`
	got := parseBench("./internal/sim", out)
	if len(got) != 3 {
		t.Fatalf("parsed %d lines, want 3", len(got))
	}
	first := got[0]
	if first.Package != "internal/sim" || first.Name != "BenchmarkSimTelemetryOff" {
		t.Errorf("identity = %q %q", first.Package, first.Name)
	}
	if first.Iterations != 2286 || first.NsPerOp != 506732 || first.BytesPerOp != 138392 || first.AllocsPerOp != 1525 {
		t.Errorf("values = %+v", first)
	}
	// Lines without -benchmem columns parse with zero memory stats.
	if got[2].Name != "BenchmarkNoMem" || got[2].BytesPerOp != 0 || got[2].AllocsPerOp != 0 {
		t.Errorf("memless line = %+v", got[2])
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := parseBench("./x", "PASS\nok x 1.0s\n--- FAIL: TestY\n"); len(got) != 0 {
		t.Errorf("parsed noise: %+v", got)
	}
}
