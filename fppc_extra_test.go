package fppc_test

import (
	"bytes"
	"strings"
	"testing"

	"fppc"
)

func TestPublicASLRoundTrip(t *testing.T) {
	src := `
assay "roundtrip"
fluid a
fluid b ports=2
x = dispense a 2
y = dispense b 2
m = mix x y 3
p, q = split m
d = detect p 4
output d good
output q waste
`
	a, err := fppc.ParseASL(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fppc.Compile(a, fppc.Config{Target: fppc.TargetFPPC})
	if err != nil {
		t.Fatal(err)
	}
	if res.OperationSeconds() <= 0 {
		t.Errorf("empty schedule")
	}
}

func TestPublicMergeAndRecovery(t *testing.T) {
	tm := fppc.DefaultTiming()
	merged, err := fppc.MergeAssays("pair", fppc.PCR(tm), fppc.InVitroN(1, tm))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != fppc.PCR(tm).Len()+fppc.InVitroN(1, tm).Len() {
		t.Errorf("merged size wrong")
	}
	// Fail the merged assay's first detect and plan recovery.
	failed := -1
	for _, n := range merged.Nodes {
		if n.Kind == fppc.Detect {
			failed = n.ID
			break
		}
	}
	plan, err := fppc.PlanRecovery(merged, []int{failed})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assay.Len() >= merged.Len() {
		t.Errorf("recovery not smaller than the original")
	}
}

func TestPublicDesignRulesAndWiring(t *testing.T) {
	chip, err := fppc.NewFPPCChip(15)
	if err != nil {
		t.Fatal(err)
	}
	if err := fppc.CheckDesignRules(chip); err != nil {
		t.Fatal(err)
	}
	rep := fppc.AnalyzeWiring(chip)
	if rep.Pins != 33 || rep.EstimatedLayers < 1 {
		t.Errorf("wiring report = %+v", rep)
	}
	da, err := fppc.NewDAChip(15, 19)
	if err != nil {
		t.Fatal(err)
	}
	if fppc.AnalyzeWiring(da).EstimatedLayers <= rep.EstimatedLayers {
		t.Errorf("DA should need more layers")
	}
}

func TestPublicReplayAndPinStats(t *testing.T) {
	a := fppc.PCR(fppc.DefaultTiming())
	res, err := fppc.Compile(a, fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	replay := fppc.NewReplay(res.Chip, res.Routing.Program, res.Routing.Events)
	frames := 0
	for replay.Step() {
		frames++
	}
	if replay.Err() != nil {
		t.Fatal(replay.Err())
	}
	if frames != res.Routing.Program.Len() {
		t.Errorf("frames = %d, want %d", frames, res.Routing.Program.Len())
	}
	if f := replay.Frame(); !strings.Contains(f, "cycle") {
		t.Errorf("frame header missing")
	}
	st := fppc.ComputePinStats(res.Routing.Program)
	if st.Activations == 0 || len(st.Busiest(3)) == 0 {
		t.Errorf("pin stats empty: %+v", st)
	}
}

func TestPublicTimingConstants(t *testing.T) {
	if fppc.CycleSeconds != 0.01 {
		t.Errorf("CycleSeconds = %v", fppc.CycleSeconds)
	}
	if fppc.TimeStepSeconds != 1.0 {
		t.Errorf("TimeStepSeconds = %v", fppc.TimeStepSeconds)
	}
	if fppc.MinFPPCHeight != 9 {
		t.Errorf("MinFPPCHeight = %v", fppc.MinFPPCHeight)
	}
}

func TestPublicRemainingSurface(t *testing.T) {
	tm := fppc.DefaultTiming()

	// Generators and analyses.
	iv := fppc.InVitro(2, 2, tm)
	if iv.Len() == 0 {
		t.Errorf("InVitro empty")
	}
	sd := fppc.SerialDilution(3, tm)
	flows, err := fppc.AnalyzeFlow(sd)
	if err != nil || len(flows) == 0 {
		t.Fatalf("AnalyzeFlow: %v", err)
	}
	fast := fppc.WithDispense(sd, 2)
	if fast.Nodes[0].Duration != 2 {
		t.Errorf("WithDispense did not rewrite durations")
	}
	if got := len(fppc.Table1Benchmarks(tm)); got != 13 {
		t.Errorf("Table1Benchmarks = %d", got)
	}

	// Chip wiring round trip.
	chip, err := fppc.NewFPPCChip(12)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fppc.ExportChipJSON(&buf, chip); err != nil {
		t.Fatal(err)
	}
	back, err := fppc.ImportChipJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.PinCount() != chip.PinCount() {
		t.Errorf("chip round trip lost pins")
	}

	// Controller frames round trip.
	res, err := fppc.Compile(fppc.InVitroN(1, tm), fppc.Config{
		Target: fppc.TargetFPPC,
		Router: fppc.RouterOptions{EmitProgram: true, RotationsPerStep: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := fppc.EncodeFrames(&buf, res.Routing.Program, res.Chip.PinCount()); err != nil {
		t.Fatal(err)
	}
	prog, err := fppc.DecodeFrames(&buf, res.Chip.PinCount())
	if err != nil || prog.Len() != res.Routing.Program.Len() {
		t.Fatalf("frame round trip: %v (%d cycles)", err, prog.Len())
	}
	if bps := fppc.LinkBandwidthBps(res.Chip.PinCount(), 100); bps <= 0 {
		t.Errorf("bandwidth = %d", bps)
	}
}
